package steer_test

// Controller tests drive the steering mechanism over real pilots: the
// external test package breaks the steer ← pilot dependency order that
// the production code keeps.

import (
	"testing"
	"time"

	"impress/internal/cluster"
	"impress/internal/costmodel"
	"impress/internal/pilot"
	"impress/internal/simclock"
	"impress/internal/steer"
	"impress/internal/telemetry"
	"impress/internal/trace"
)

func testCost() costmodel.Params {
	p := costmodel.Default()
	p.JitterFrac = 0
	p.BootstrapTime = time.Minute
	p.SetupBase = 10 * time.Second
	p.SetupPerConcur = 0
	p.SetupMax = time.Minute
	return p
}

type rig struct {
	engine *simclock.Engine
	pilots []*pilot.Pilot
	tm     *pilot.TaskManager
}

// newRig builds a CPU pilot and a GPU pilot over n-node split partitions.
func newRig(t *testing.T, nodes int) *rig {
	t.Helper()
	cpu, gpu := cluster.AmarelSplit()
	cpu.Nodes, gpu.Nodes = nodes, nodes
	engine := simclock.New()
	rec := trace.NewRecorder(cpu.TotalCores()+gpu.TotalCores(), cpu.TotalGPUs()+gpu.TotalGPUs(), 0)
	pm := pilot.NewPilotManager(engine, rec)
	var pilots []*pilot.Pilot
	for i, spec := range []cluster.Spec{cpu, gpu} {
		p, err := pm.Submit(pilot.PilotDescription{
			Machine: spec, Cost: testCost(), Backfill: true, Steer: "greedy", Seed: uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		pilots = append(pilots, p)
	}
	return &rig{engine: engine, pilots: pilots, tm: pilot.NewTaskManager(engine, pilots...)}
}

func elastics(ps []*pilot.Pilot) []steer.Elastic {
	out := make([]steer.Elastic, len(ps))
	for i, p := range ps {
		out[i] = p
	}
	return out
}

func cpuWork(d time.Duration, cores int) pilot.Work {
	return pilot.WorkFunc(func(*pilot.ExecContext) (pilot.Result, error) {
		return pilot.Result{Phases: []pilot.Phase{{Name: "c", Duration: d, BusyCores: cores}}}, nil
	})
}

// TestControllerSteersCapacityTowardPressure floods the CPU pilot while
// the GPU pilot sits idle: the greedy controller must move GPU-partition
// nodes over, the flood must finish sooner than the frozen split allows,
// and every transfer must be logged.
func TestControllerSteersCapacityTowardPressure(t *testing.T) {
	makespan := func(steered bool) (time.Duration, int) {
		r := newRig(t, 3)
		var ctl *steer.Controller
		if steered {
			pol, err := steer.New("greedy")
			if err != nil {
				t.Fatal(err)
			}
			ctl = steer.NewController(r.engine, elastics(r.pilots), nil, pol, steer.DefaultPeriod, nil)
			ctl.Start()
		}
		// 24 MSA-shaped CPU tasks (8 cores, the paper's MSA width) over 3
		// CPU nodes: a long queue the GPU pilot's idle 8-core nodes could
		// help drain (its floor keeps the last one home).
		var tasks []*pilot.Task
		for i := 0; i < 24; i++ {
			tasks = append(tasks, r.tm.MustSubmit(pilot.TaskDescription{
				Name: "cpu", Cores: 8, Pilot: r.pilots[0].ID,
				Work: cpuWork(2*time.Hour, 8),
			}))
		}
		// Drain with a bounded horizon, then stop the ticker so the
		// engine can run dry.
		r.engine.RunUntil(simclock.FromHours(24 * 7))
		if ctl != nil {
			ctl.Stop()
		}
		r.engine.Run()
		var end simclock.Time
		for _, task := range tasks {
			if task.State() != pilot.StateDone {
				t.Fatalf("task %s ended %v", task.ID, task.State())
			}
			if task.EndedAt > end {
				end = task.EndedAt
			}
		}
		moves := 0
		if ctl != nil {
			moves = ctl.Transfers()
		}
		return end.Duration(), moves
	}

	frozen, _ := makespan(false)
	steered, moves := makespan(true)
	if moves == 0 {
		t.Fatal("controller applied no transfers under sustained pressure")
	}
	if steered >= frozen {
		t.Fatalf("steering did not help: %v steered vs %v frozen", steered, frozen)
	}
}

// TestControllerSkipsUselessDonations pins the stranding guard: a CPU
// node (0 GPUs) must never be shipped to a queue of GPU tasks it cannot
// host.
func TestControllerSkipsUselessDonations(t *testing.T) {
	r := newRig(t, 2)
	pol, _ := steer.New("greedy")
	ctl := steer.NewController(r.engine, elastics(r.pilots), nil, pol, steer.DefaultPeriod, nil)
	ctl.Start()
	// Flood the GPU pilot with GPU tasks; the CPU pilot idles. Its
	// 0-GPU nodes are useless to that queue and must stay home.
	for i := 0; i < 12; i++ {
		r.tm.MustSubmit(pilot.TaskDescription{
			Name: "gpu", Cores: 2, GPUs: 4, Pilot: r.pilots[1].ID,
			Work: pilot.WorkFunc(func(*pilot.ExecContext) (pilot.Result, error) {
				return pilot.Result{Phases: []pilot.Phase{{Name: "g", Duration: time.Hour, BusyCores: 2, BusyGPUs: 4}}}, nil
			}),
		})
	}
	r.engine.RunUntil(simclock.FromHours(24))
	ctl.Stop()
	r.engine.Run()
	if n := ctl.Transfers(); n != 0 {
		t.Fatalf("%d useless transfers applied: %v", n, ctl.Moves())
	}
	if got := r.pilots[0].Cluster().ActiveNodeCount(); got != 2 {
		t.Fatalf("CPU pilot lost nodes to a queue it cannot serve: %d", got)
	}
}

// TestControllerHonoursFrozenMask: a pilot whose Steer resolved to
// "none" keeps its partition whatever the pressure elsewhere.
func TestControllerHonoursFrozenMask(t *testing.T) {
	r := newRig(t, 2)
	pol, _ := steer.New("greedy")
	ctl := steer.NewController(r.engine, elastics(r.pilots), []bool{false, true}, pol, steer.DefaultPeriod, nil)
	ctl.Start()
	for i := 0; i < 16; i++ {
		r.tm.MustSubmit(pilot.TaskDescription{
			Name: "cpu", Cores: 8, Pilot: r.pilots[0].ID, Work: cpuWork(2*time.Hour, 8),
		})
	}
	r.engine.RunUntil(simclock.FromHours(24 * 7))
	ctl.Stop()
	r.engine.Run()
	if n := ctl.Transfers(); n != 0 {
		t.Fatalf("frozen pilot donated %d nodes", n)
	}
	if got := r.pilots[1].Cluster().ActiveNodeCount(); got != 2 {
		t.Fatalf("frozen pilot has %d nodes", got)
	}
}

// TestControllerKeepsLastOperationalNode pins the down-node-aware floor:
// a donor whose other node is crashed must not ship its only live node,
// however hard the receiver starves.
func TestControllerKeepsLastOperationalNode(t *testing.T) {
	r := newRig(t, 2)
	pol, _ := steer.New("greedy")
	ctl := steer.NewController(r.engine, elastics(r.pilots), nil, pol, steer.DefaultPeriod, nil)
	ctl.Start()
	for i := 0; i < 16; i++ {
		r.tm.MustSubmit(pilot.TaskDescription{
			Name: "cpu", Cores: 8, Pilot: r.pilots[0].ID, Work: cpuWork(2*time.Hour, 8),
		})
	}
	// Crash one of the GPU pilot's two nodes right after activation: the
	// survivor is the pilot's only schedulable capacity and must stay.
	r.engine.After(2*time.Minute, func() {
		r.pilots[1].Cluster().SetNodeDown(0)
	})
	r.engine.RunUntil(simclock.FromHours(24 * 7))
	ctl.Stop()
	r.engine.Run()
	if n := ctl.Transfers(); n != 0 {
		t.Fatalf("donor shipped its last operational node (%d transfers): %v", n, ctl.Moves())
	}
	if got := r.pilots[1].Cluster().ActiveNodeCount(); got != 2 {
		t.Fatalf("GPU pilot has %d nodes", got)
	}
}

// capturePolicy records every stats snapshot it is shown and proposes a
// fixed transfer list each observation.
type capturePolicy struct {
	snaps    [][]steer.Stat
	proposal []steer.Transfer
}

func (p *capturePolicy) Name() string { return "capture" }
func (p *capturePolicy) Decide(stats []steer.Stat) []steer.Transfer {
	p.snaps = append(p.snaps, append([]steer.Stat(nil), stats...))
	return p.proposal
}

// TestControllerRecordsVetoes: every rejected proposal lands in the veto
// log with the mechanism's reason, and applied-move counting stays
// separate.
func TestControllerRecordsVetoes(t *testing.T) {
	r := newRig(t, 2)
	pol := &capturePolicy{proposal: []steer.Transfer{
		{From: 5, To: 0}, // out of range
		{From: 1, To: 1}, // self-transfer
		{From: 1, To: 0}, // no queued CPU work fits nothing -> no-fitting-capacity
	}}
	ctl := steer.NewController(r.engine, elastics(r.pilots), nil, pol, steer.DefaultPeriod, nil)
	ctl.Start()
	// One short task keeps the engine alive past a few observations.
	r.tm.MustSubmit(pilot.TaskDescription{
		Name: "cpu", Cores: 2, Pilot: r.pilots[0].ID, Work: cpuWork(time.Hour, 2),
	})
	r.engine.RunUntil(simclock.FromHours(1))
	ctl.Stop()
	r.engine.Run()

	if ctl.Transfers() != 0 {
		t.Fatalf("%d transfers applied from invalid proposals", ctl.Transfers())
	}
	vetoes := ctl.Vetoes()
	if len(vetoes) == 0 || ctl.VetoCount() != len(vetoes) {
		t.Fatalf("veto log empty or miscounted: %d vs %d", len(vetoes), ctl.VetoCount())
	}
	reasons := make(map[string]int)
	for _, v := range vetoes {
		reasons[v.Reason]++
	}
	if reasons[steer.VetoBadProposal] == 0 {
		t.Fatalf("no bad-proposal vetoes in %v", reasons)
	}
	if reasons[steer.VetoNoCapacity] == 0 {
		t.Fatalf("no no-fitting-capacity vetoes in %v", reasons)
	}
	// The returned log is a copy.
	vetoes[0].Reason = "mutated"
	if ctl.Vetoes()[0].Reason == "mutated" {
		t.Fatal("Vetoes exposed internal slice")
	}
}

// TestControllerStatDerivatives pins the windowed telemetry signals the
// controller maintains for predictive policies: Util reflects allocated
// capacity, UtilWindow is seeded by the first sample, and QueueDelta is
// zero first and tracks queue growth afterwards.
func TestControllerStatDerivatives(t *testing.T) {
	r := newRig(t, 2)
	pol := &capturePolicy{}
	ctl := steer.NewController(r.engine, elastics(r.pilots), nil, pol, steer.DefaultPeriod, nil)
	ctl.Start()
	for i := 0; i < 16; i++ {
		r.tm.MustSubmit(pilot.TaskDescription{
			Name: "cpu", Cores: 8, Pilot: r.pilots[0].ID, Work: cpuWork(4*time.Hour, 8),
		})
	}
	r.engine.RunUntil(simclock.FromHours(2))
	ctl.Stop()
	r.engine.Run()

	if len(pol.snaps) < 2 {
		t.Fatalf("only %d observations", len(pol.snaps))
	}
	first, second := pol.snaps[0], pol.snaps[1]
	if first[0].QueueDelta != 0 {
		t.Fatalf("first QueueDelta = %d, want 0", first[0].QueueDelta)
	}
	if first[0].UtilWindow != first[0].Util {
		t.Fatalf("first UtilWindow = %v, want seeded to Util %v", first[0].UtilWindow, first[0].Util)
	}
	if first[0].Util <= 0 || first[0].Util > 1 {
		t.Fatalf("flooded pilot Util = %v", first[0].Util)
	}
	wantWin := 0.5*first[0].UtilWindow + 0.5*second[0].Util
	if diff := second[0].UtilWindow - wantWin; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("second UtilWindow = %v, want EWMA %v", second[0].UtilWindow, wantWin)
	}
	if second[0].QueueDelta != second[0].Queue-first[0].Queue {
		t.Fatalf("QueueDelta = %d, want %d", second[0].QueueDelta, second[0].Queue-first[0].Queue)
	}
}

// TestControllerTelemetryLog: with a recorder attached, every tick lands
// in the timeline with its per-pilot samples, and vetoes emit instants.
func TestControllerTelemetryLog(t *testing.T) {
	r := newRig(t, 2)
	pol := &capturePolicy{proposal: []steer.Transfer{{From: 9, To: 9}}}
	ctl := steer.NewController(r.engine, elastics(r.pilots), nil, pol, steer.DefaultPeriod, nil)
	tel := telemetry.NewRecorder()
	ctl.SetTelemetry(tel)
	ctl.Start()
	r.tm.MustSubmit(pilot.TaskDescription{
		Name: "cpu", Cores: 2, Pilot: r.pilots[0].ID, Work: cpuWork(time.Hour, 2),
	})
	r.engine.RunUntil(simclock.FromHours(1))
	ctl.Stop()
	r.engine.Run()

	d := tel.Data()
	if len(d.Ticks) != len(pol.snaps) {
		t.Fatalf("%d ticks logged for %d observations", len(d.Ticks), len(pol.snaps))
	}
	if len(d.Ticks[0].Pilots) != 2 {
		t.Fatalf("tick samples = %d pilots, want 2", len(d.Ticks[0].Pilots))
	}
	if len(d.Ticks[0].Actions) == 0 {
		t.Fatal("vetoed observation logged no actions")
	}
	if tel.Counter(telemetry.KindSteerVeto) == 0 {
		t.Fatal("no steer-veto instants recorded")
	}
}
