package steer

import (
	"reflect"
	"testing"
)

func TestTenantRegistrySeparateFromPilotRegistry(t *testing.T) {
	// The pilot-level grid (elastic-screen, chaos-sweep) iterates
	// Names(); tenant policies must not leak into it.
	for _, n := range Names() {
		if n == "fairshare" {
			t.Fatal("tenant policy leaked into the pilot-level registry")
		}
	}
	want := []string{"fairshare", "none"}
	if got := TenantNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("TenantNames() = %v, want %v", got, want)
	}
	if _, err := NewTenant("bogus"); err == nil {
		t.Fatal("unknown tenant policy accepted")
	}
	if err := ValidateTenant(""); err != nil {
		t.Fatal(err)
	}
	if TenantEnabled("none") || TenantEnabled("") {
		t.Fatal("none/empty must not count as enabled")
	}
	if !TenantEnabled("fairshare") {
		t.Fatal("fairshare must count as enabled")
	}
}

func TestTenantNoneNeverMoves(t *testing.T) {
	p, err := NewTenant("none")
	if err != nil {
		t.Fatal(err)
	}
	stats := []TenantStat{
		{Name: "a", Share: 1, Nodes: 5, Queue: 0, Idle: 4},
		{Name: "b", Share: 5, Nodes: 1, Queue: 9, Idle: 0},
	}
	if moves := p.Decide(stats); len(moves) != 0 {
		t.Fatalf("none proposed %v", moves)
	}
}

func TestTenantFairshareReclaimsFromOverShare(t *testing.T) {
	p, err := NewTenant("fairshare")
	if err != nil {
		t.Fatal(err)
	}
	stats := []TenantStat{
		{Name: "hog", Share: 2, Nodes: 5, Queue: 0, Idle: 2},
		{Name: "starved", Share: 4, Nodes: 1, Queue: 7, Idle: 0},
		{Name: "balanced", Share: 2, Nodes: 2, Queue: 1, Idle: 0},
	}
	moves := p.Decide(stats)
	if len(moves) != 1 || moves[0].From != 0 || moves[0].To != 1 {
		t.Fatalf("fairshare proposed %v, want [{0 1}]", moves)
	}
}

func TestTenantFairshareNeedsDemandAndMargin(t *testing.T) {
	p, _ := NewTenant("fairshare")
	// Receiver has no queue pressure: entitlement alone must not move
	// hardware.
	if moves := p.Decide([]TenantStat{
		{Name: "a", Share: 2, Nodes: 5, Idle: 3},
		{Name: "b", Share: 4, Nodes: 1, Queue: 0},
	}); len(moves) != 0 {
		t.Fatalf("moved without demand: %v", moves)
	}
	// Donor would drop below its last node.
	if moves := p.Decide([]TenantStat{
		{Name: "a", Share: 0.2, Nodes: 1, Idle: 1},
		{Name: "b", Share: 3, Nodes: 1, Queue: 5},
	}); len(moves) != 0 {
		t.Fatalf("moved a last node: %v", moves)
	}
	// Combined imbalance under one node: moving would ping-pong.
	if moves := p.Decide([]TenantStat{
		{Name: "a", Share: 1.6, Nodes: 2, Idle: 1},
		{Name: "b", Share: 2.4, Nodes: 2, Queue: 5},
	}); len(moves) != 0 {
		t.Fatalf("moved inside the hysteresis margin: %v", moves)
	}
}
