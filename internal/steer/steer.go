// Package steer is the elastic pilot-steering layer: the runtime lever
// the IMPRESS paper calls adaptive resource use. The coordinator does
// not just schedule a fixed CPU/GPU split — it watches per-pilot queue
// pressure and idle capacity mid-campaign and transfers whole nodes
// between pilots so capacity follows the stages that are starving.
//
// Mirroring internal/sched and internal/fault, the package separates
// policy from mechanism: a Policy inspects a per-pilot pressure snapshot
// and proposes node transfers; the Controller owns the mechanism — it
// samples on the virtual timeline, vetoes transfers that would violate
// the runtime's invariants (down nodes, in-flight allocations, a
// pilot's last node, shapes the receiver cannot use), and drives the
// pilots' grow/shrink operations. A policy can therefore never corrupt
// a ledger; at worst it steers badly.
//
// Unlike scheduling policies, steering policies may carry state across
// observations (hysteresis needs memory), so New returns a fresh
// instance per campaign.
package steer

import (
	"fmt"
	"sort"
	"time"
)

// DefaultPeriod is the steering observation interval on the virtual
// timeline. Campaign makespans run tens of virtual hours and tasks tens
// of minutes, so a 15-minute cadence reacts within a stage wave without
// flooding the event queue.
const DefaultPeriod = 15 * time.Minute

// Stat is the policy's read-only view of one pilot at an observation.
type Stat struct {
	// Queue is the number of tasks waiting for resources.
	Queue int
	// Running is the number of placed (setup or executing) tasks.
	Running int
	// Nodes is the number of operational nodes in the pilot's ledger: up
	// and not transferred away. Crashed nodes are excluded — a pilot
	// mid-repair must not donate its last live node on the strength of
	// capacity it cannot currently schedule.
	Nodes int
	// Idle is the number of transferable nodes: up, fully free, holding
	// no in-flight allocations.
	Idle int
	// Frozen marks a pilot that opted out of steering; it neither
	// donates nor receives nodes, whatever the policy proposes.
	Frozen bool

	// Derivative signals, maintained incrementally by the controller
	// across observations (the telemetry layer's cheap windowed
	// aggregates). Existing policies ignore them; they exist so
	// predictive policies can move capacity before a queue forms.

	// Util is the fraction of the pilot's core capacity currently
	// allocated (0..1; 0 when the pilot has no capacity).
	Util float64
	// UtilWindow is an exponentially weighted moving average of Util
	// over past observations (alpha 0.5; seeded with the first sample).
	UtilWindow float64
	// QueueDelta is the queue-length change since the previous
	// observation (0 at the first).
	QueueDelta int
}

// Transfer proposes moving one node between pilots, by index into the
// Stat slice handed to Decide.
type Transfer struct {
	From int
	To   int
}

// Policy proposes node transfers from a pressure snapshot. Decisions
// must be deterministic functions of the observation history — the
// whole middleware replays bit-identically from a seed.
type Policy interface {
	// Name returns the registry name of the policy.
	Name() string
	// Decide returns the transfers to attempt this observation. The
	// controller validates each against the runtime's invariants and
	// skips (never substitutes) invalid ones.
	Decide(stats []Stat) []Transfer
}

// nonePolicy never transfers: the frozen split. This is the default and
// the configuration the golden traces prove bit-identical to the
// pre-steering runtime.
type nonePolicy struct{}

func (nonePolicy) Name() string                   { return "none" }
func (nonePolicy) Decide(stats []Stat) []Transfer { return nil }

// greedyPolicy rebalances the moment pressure appears: every observation,
// each starving pilot (non-empty queue) is offered one node from the
// donor with the most idle nodes among pilots that are not starving
// themselves. It reacts within one period but can thrash when pressure
// oscillates faster than tasks drain.
type greedyPolicy struct{}

func (greedyPolicy) Name() string { return "greedy" }

func (greedyPolicy) Decide(stats []Stat) []Transfer {
	var out []Transfer
	for _, to := range starving(stats) {
		if from, ok := bestDonor(stats, to); ok {
			out = append(out, Transfer{From: from, To: to})
		}
	}
	return out
}

// Hysteresis tuning: pressure must persist for Patience consecutive
// observations before a node moves, a donor must have stayed quiet as
// long, and every transfer opens a cooldown window. The thresholds trade
// reaction latency for stability.
const (
	hysteresisPatience = 2
	hysteresisCooldown = 2
)

// hysteresisPolicy is greedy damped by thresholds: a pilot must starve
// for Patience consecutive observations (and its donor must have been
// idle-handed just as long) before a node moves, and each transfer is
// followed by a cooldown during which the pair is left alone. This is
// the thrash-resistant policy control theory would reach for.
type hysteresisPolicy struct {
	starveStreak []int
	quietStreak  []int
	cooldown     []int
}

func (p *hysteresisPolicy) Name() string { return "hysteresis" }

func (p *hysteresisPolicy) Decide(stats []Stat) []Transfer {
	if len(p.starveStreak) != len(stats) {
		p.starveStreak = make([]int, len(stats))
		p.quietStreak = make([]int, len(stats))
		p.cooldown = make([]int, len(stats))
	}
	for i, s := range stats {
		if s.Queue > 0 {
			p.starveStreak[i]++
			p.quietStreak[i] = 0
		} else {
			p.starveStreak[i] = 0
			p.quietStreak[i]++
		}
		if p.cooldown[i] > 0 {
			p.cooldown[i]--
		}
	}
	var out []Transfer
	for _, to := range starving(stats) {
		if p.starveStreak[to] < hysteresisPatience || p.cooldown[to] > 0 {
			continue
		}
		from, ok := bestDonor(stats, to)
		if !ok || p.quietStreak[from] < hysteresisPatience || p.cooldown[from] > 0 {
			continue
		}
		out = append(out, Transfer{From: from, To: to})
		p.cooldown[from], p.cooldown[to] = hysteresisCooldown, hysteresisCooldown
	}
	return out
}

// preemptPolicy is greedy with checkpointed eviction as its fallback:
// when a starving pilot has no idle-handed donor, it still proposes a
// transfer from the least-starved busy pilot, relying on the controller
// to drain a busy node (checkpoint, evict, transfer, resume) instead of
// vetoing with non-idle. It trades a bounded amount of re-execution
// (work past the last checkpoint) for capacity that follows pressure
// even when the fleet is saturated.
type preemptPolicy struct{}

func (preemptPolicy) Name() string { return "preempt" }

// Preemptive marks the policy's transfers as eligible for the
// controller's drain path.
func (preemptPolicy) Preemptive() bool { return true }

func (preemptPolicy) Decide(stats []Stat) []Transfer {
	var out []Transfer
	for _, to := range starving(stats) {
		from, ok := bestDonor(stats, to)
		if !ok {
			from, ok = busyDonor(stats, to)
		}
		if ok {
			out = append(out, Transfer{From: from, To: to})
		}
	}
	return out
}

// busyDonor relaxes bestDonor's idle-handedness requirement: any
// unfrozen, non-starving pilot with more than one operational node may
// donate, preferring the pilot with the most nodes (ties by index). The
// donated node will carry running work, so this is only proposed by
// policies the controller drains for.
func busyDonor(stats []Stat, to int) (int, bool) {
	best, found := -1, false
	for i, s := range stats {
		if i == to || s.Frozen || s.Queue > 0 || s.Nodes <= 1 {
			continue
		}
		if !found || s.Nodes > stats[best].Nodes {
			best, found = i, true
		}
	}
	return best, found
}

// starving returns the indices of unfrozen pilots with queued work,
// deepest queue first (ties by index, for determinism).
func starving(stats []Stat) []int {
	var out []int
	for i, s := range stats {
		if !s.Frozen && s.Queue > 0 {
			out = append(out, i)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return stats[out[a]].Queue > stats[out[b]].Queue })
	return out
}

// bestDonor picks the unfrozen pilot with the most idle nodes that is
// not itself starving, has a transferable node, and holds more than one
// operational node (a pilot never donates its last). Ties break by
// index.
func bestDonor(stats []Stat, to int) (int, bool) {
	best, found := -1, false
	for i, s := range stats {
		if i == to || s.Frozen || s.Queue > 0 || s.Idle < 1 || s.Nodes <= 1 {
			continue
		}
		if !found || s.Idle > stats[best].Idle {
			best, found = i, true
		}
	}
	return best, found
}

// registry builders: steering policies may carry state, so each campaign
// gets a fresh instance.
var builders = map[string]func() Policy{
	"none":       func() Policy { return nonePolicy{} },
	"greedy":     func() Policy { return greedyPolicy{} },
	"hysteresis": func() Policy { return &hysteresisPolicy{} },
	"preempt":    func() Policy { return preemptPolicy{} },
}

// Names returns the registered steering-policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New returns a fresh instance of the named steering policy.
func New(name string) (Policy, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("steer: unknown steering policy %q (known: %v)", name, Names())
	}
	return b(), nil
}

// Default returns the default steering policy name ("none"): pilot
// partitions stay frozen at campaign start, exactly as the pre-steering
// runtime behaved.
func Default() string { return "none" }

// Enabled reports whether a resolved policy name actually steers.
func Enabled(name string) bool { return name != "" && name != "none" }

// Validate checks a steering-policy name from configuration; the empty
// string is valid and means Default.
func Validate(name string) error {
	if name == "" {
		return nil
	}
	_, err := New(name)
	return err
}
