package steer

import (
	"testing"
)

func TestRegistry(t *testing.T) {
	want := []string{"greedy", "hysteresis", "none", "preempt"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, n := range want {
		p, err := New(n)
		if err != nil || p.Name() != n {
			t.Fatalf("New(%q) = %v, %v", n, p, err)
		}
	}
	if _, err := New("round-robin"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := Validate(""); err != nil {
		t.Fatal("empty name must be valid (defaults to none)")
	}
	if Default() != "none" {
		t.Fatalf("Default() = %q", Default())
	}
	if Enabled("none") || Enabled("") || !Enabled("greedy") {
		t.Fatal("Enabled wrong")
	}
}

// TestNewReturnsFreshInstances pins the stateful-policy contract: two
// campaigns must never share hysteresis counters.
func TestNewReturnsFreshInstances(t *testing.T) {
	a, _ := New("hysteresis")
	b, _ := New("hysteresis")
	if a == b {
		t.Fatal("New returned a shared hysteresis instance")
	}
	stats := []Stat{{Queue: 5, Nodes: 2}, {Idle: 2, Nodes: 3}}
	for i := 0; i < hysteresisPatience; i++ {
		a.Decide(stats)
	}
	// b has seen nothing: its first decision must still be empty.
	if got := b.Decide(stats); len(got) != 0 {
		t.Fatalf("fresh instance inherited streaks: %v", got)
	}
}

func TestNoneNeverTransfers(t *testing.T) {
	p, _ := New("none")
	stats := []Stat{{Queue: 100, Nodes: 1}, {Idle: 5, Nodes: 6}}
	for i := 0; i < 10; i++ {
		if got := p.Decide(stats); len(got) != 0 {
			t.Fatalf("none proposed %v", got)
		}
	}
}

func TestGreedyRebalances(t *testing.T) {
	p, _ := New("greedy")
	// Pilot 0 starves, pilot 1 has idle nodes and no queue.
	got := p.Decide([]Stat{{Queue: 3, Nodes: 2}, {Idle: 2, Nodes: 4}})
	if len(got) != 1 || got[0] != (Transfer{From: 1, To: 0}) {
		t.Fatalf("greedy proposed %v", got)
	}
	// No idle nodes anywhere: nothing to move.
	if got := p.Decide([]Stat{{Queue: 3, Nodes: 2}, {Nodes: 4, Running: 9}}); len(got) != 0 {
		t.Fatalf("greedy proposed %v with no idle donor", got)
	}
	// A donor that is itself starving never donates.
	if got := p.Decide([]Stat{{Queue: 3, Nodes: 2}, {Queue: 1, Idle: 2, Nodes: 4}}); len(got) != 0 {
		t.Fatalf("greedy raided a starving pilot: %v", got)
	}
	// A single-node donor never gives up its last node.
	if got := p.Decide([]Stat{{Queue: 3, Nodes: 2}, {Idle: 1, Nodes: 1}}); len(got) != 0 {
		t.Fatalf("greedy took a pilot's last node: %v", got)
	}
	// Frozen pilots neither donate nor receive.
	if got := p.Decide([]Stat{{Queue: 3, Nodes: 2}, {Idle: 2, Nodes: 4, Frozen: true}}); len(got) != 0 {
		t.Fatalf("greedy raided a frozen pilot: %v", got)
	}
	if got := p.Decide([]Stat{{Queue: 3, Nodes: 2, Frozen: true}, {Idle: 2, Nodes: 4}}); len(got) != 0 {
		t.Fatalf("greedy fed a frozen pilot: %v", got)
	}
	// The deepest queue is served first when donors are scarce.
	got = p.Decide([]Stat{{Queue: 1, Nodes: 2}, {Queue: 7, Nodes: 2}, {Idle: 1, Nodes: 2}})
	if len(got) == 0 || got[0] != (Transfer{From: 2, To: 1}) {
		t.Fatalf("greedy order %v, want deepest queue first", got)
	}
}

func TestHysteresisRequiresPersistence(t *testing.T) {
	p, _ := New("hysteresis")
	pressure := []Stat{{Queue: 3, Nodes: 2}, {Idle: 2, Nodes: 4}}
	calm := []Stat{{Nodes: 2}, {Idle: 2, Nodes: 4}}

	// One observation of pressure is noise, not a trend.
	if got := p.Decide(pressure); len(got) != 0 {
		t.Fatalf("hysteresis moved on first observation: %v", got)
	}
	// Pressure that persists crosses the threshold.
	got := p.Decide(pressure)
	if len(got) != 1 || got[0] != (Transfer{From: 1, To: 0}) {
		t.Fatalf("hysteresis after persistence: %v", got)
	}
	// The transfer opens a cooldown window: continued pressure does not
	// trigger an immediate second move.
	if got := p.Decide(pressure); len(got) != 0 {
		t.Fatalf("hysteresis ignored its cooldown: %v", got)
	}
	// An interrupted streak starts over.
	p2, _ := New("hysteresis")
	p2.Decide(pressure)
	p2.Decide(calm)
	if got := p2.Decide(pressure); len(got) != 0 {
		t.Fatalf("hysteresis kept a broken streak: %v", got)
	}
}

// TestHysteresisAcceptsSingleIdleDonor pins the donor threshold to one
// transferable node: the damping is the patience streaks and cooldowns,
// not a hidden idle-count floor (patience is measured in observations,
// not nodes).
func TestHysteresisAcceptsSingleIdleDonor(t *testing.T) {
	p, _ := New("hysteresis")
	pressure := []Stat{{Queue: 3, Nodes: 2}, {Idle: 1, Nodes: 2, Running: 1}}
	p.Decide(pressure)
	got := p.Decide(pressure)
	if len(got) != 1 || got[0] != (Transfer{From: 1, To: 0}) {
		t.Fatalf("hysteresis refused a single-idle donor: %v", got)
	}
}
