package steer

// Inter-campaign steering: the same policy/mechanism split as pilot-level
// steering, lifted one level. A TenantPolicy looks at per-tenant pressure
// and fair-share targets on a shared cluster and proposes whole-node
// reclaims between campaigns; the tenancy service owns the mechanism — it
// drains the donor's node through the checkpoint/evict/resume path,
// re-leases it on the pool ledger, and grows it into the receiver.
//
// Tenant policies deliberately live in their own registry: Names() feeds
// the elastic-screen and chaos-sweep campaign grids, so adding tenant
// policies there would silently reshape existing scenarios.

import (
	"fmt"
	"sort"
)

// TenantStat is the policy's read-only view of one admitted tenant at a
// reclaim observation.
type TenantStat struct {
	// Name labels the tenant (deterministic tie-breaking).
	Name string
	// Share is the tenant's fair-share target in nodes, as computed by
	// the admission policy in force (fractional: a weight-proportional
	// share rarely lands on an integer).
	Share float64
	// Nodes is the number of nodes the tenant currently leases.
	Nodes int
	// Queue is the number of tasks waiting for resources across the
	// tenant's pilots.
	Queue int
	// Idle is the number of transferable (fully free) leased nodes.
	Idle int
}

// TenantPolicy proposes node reclaims between tenants. Decisions must be
// deterministic functions of the snapshot — the tenant loop replays
// bit-identically from a seed. Transfer indexes refer to the TenantStat
// slice handed to Decide.
type TenantPolicy interface {
	// Name returns the registry name of the policy.
	Name() string
	// Decide returns the reclaims to attempt this observation.
	Decide(stats []TenantStat) []Transfer
}

// tenantNone never reclaims: tenants keep their admission grant for life.
type tenantNone struct{}

func (tenantNone) Name() string                  { return "none" }
func (tenantNone) Decide([]TenantStat) []Transfer { return nil }

// tenantFairshare moves one node per observation from the tenant most
// over its fair share to the starving tenant furthest under its share —
// the quota-reclaim move. A donor must be over-share by at least one
// whole node and keep at least one node; a receiver must be under-share
// with real queue pressure, so the reclaim is demand-driven rather than
// an entitlement shuffle.
type tenantFairshare struct{}

func (tenantFairshare) Name() string { return "fairshare" }

func (tenantFairshare) Decide(stats []TenantStat) []Transfer {
	donor, receiver := -1, -1
	var donorOver, receiverUnder float64
	for i, s := range stats {
		over := float64(s.Nodes) - s.Share
		if s.Nodes > 1 && over >= 1 {
			if donor < 0 || over > donorOver || (over == donorOver && s.Name < stats[donor].Name) {
				donor, donorOver = i, over
			}
		}
		under := s.Share - float64(s.Nodes)
		if s.Queue > 0 && under > 0 {
			if receiver < 0 || under > receiverUnder || (under == receiverUnder && s.Name < stats[receiver].Name) {
				receiver, receiverUnder = i, under
			}
		}
	}
	if donor < 0 || receiver < 0 || donor == receiver {
		return nil
	}
	// Only move when the pair actually converges toward the share
	// targets: a transfer shifts one whole node, so the combined
	// imbalance must exceed one node or the move just ping-pongs.
	if donorOver+receiverUnder <= 1+1e-9 {
		return nil
	}
	return []Transfer{{From: donor, To: receiver}}
}

// tenantBuilders is the registry of inter-campaign steering policies,
// separate from the pilot-level builders map (whose Names() existing
// scenario grids iterate).
var tenantBuilders = map[string]func() TenantPolicy{
	"none":      func() TenantPolicy { return tenantNone{} },
	"fairshare": func() TenantPolicy { return tenantFairshare{} },
}

// TenantNames lists the registered inter-campaign policies, sorted.
func TenantNames() []string {
	names := make([]string, 0, len(tenantBuilders))
	for n := range tenantBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewTenant builds a fresh instance of the named inter-campaign policy;
// empty selects the default ("none").
func NewTenant(name string) (TenantPolicy, error) {
	if name == "" {
		name = TenantDefault()
	}
	b, ok := tenantBuilders[name]
	if !ok {
		return nil, fmt.Errorf("steer: unknown tenant policy %q (have %v)", name, TenantNames())
	}
	return b(), nil
}

// TenantDefault is the inter-campaign policy used when none is named.
func TenantDefault() string { return "none" }

// TenantEnabled reports whether the name selects an active reclaim
// policy (anything but "none" or empty).
func TenantEnabled(name string) bool { return name != "" && name != "none" }

// ValidateTenant rejects unknown inter-campaign policy names; empty is
// the default and fine.
func ValidateTenant(name string) error {
	if name == "" {
		return nil
	}
	if _, ok := tenantBuilders[name]; !ok {
		return fmt.Errorf("steer: unknown tenant policy %q (have %v)", name, TenantNames())
	}
	return nil
}
