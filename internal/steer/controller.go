package steer

import (
	"fmt"
	"time"

	"impress/internal/cluster"
	"impress/internal/fault"
	"impress/internal/simclock"
	"impress/internal/telemetry"
)

// Elastic is the slice of the pilot mechanism the controller drives.
// *pilot.Pilot implements it; the interface keeps this package below
// internal/pilot in the dependency order (pilot validates steering
// names through this package).
type Elastic interface {
	// Active reports whether the pilot currently schedules tasks.
	Active() bool
	// QueueLen returns the number of tasks waiting for resources.
	QueueLen() int
	// RunningCount returns the number of placed tasks.
	RunningCount() int
	// QueuedRequests returns the allocation requests of the queued
	// tasks, in queue order.
	QueuedRequests() []cluster.Request
	// Cluster exposes the pilot's resource ledger.
	Cluster() *cluster.Cluster
	// ShrinkNode transfers the identified idle node out of the pilot,
	// returning its capacity and its detached crash chain (nil without a
	// crash model) — node fault ownership travels with the node.
	ShrinkNode(id int) (cluster.NodeCapacity, *fault.Chain, error)
	// GrowNode transfers a node of the given capacity into the pilot,
	// handing the donor's crash chain to the receiver's fault injector.
	GrowNode(nc cluster.NodeCapacity, ch *fault.Chain) int
	// EvictNode checkpoints and evicts every task resident on the
	// identified node (requeueing each with its saved progress, hinted
	// at the resumeOn pilot), then transfers the node out like
	// ShrinkNode. Only preemptive policies reach this.
	EvictNode(id int, resumeOn string) (cluster.NodeCapacity, *fault.Chain, error)
	// PilotID returns the pilot's stable identifier, used as the
	// resume hint for work evicted toward it.
	PilotID() string
}

// preemptCapable marks a policy whose transfers may drain a busy node
// through Elastic.EvictNode when no idle node fits. Policies that do not
// implement it (or return false) keep the non-idle veto semantics.
type preemptCapable interface{ Preemptive() bool }

// Move records one applied node transfer.
type Move struct {
	// At is the virtual time of the transfer.
	At simclock.Time
	// From and To are pilot indices in controller order.
	From, To int
	// Node is the transferred capacity.
	Node cluster.NodeCapacity
}

// Veto reasons: why the controller rejected a policy's proposed
// transfer. Stable strings — they appear in reports and telemetry.
const (
	VetoBadProposal = "bad-proposal"
	VetoFrozen      = "frozen"
	VetoInactive    = "inactive"
	VetoLastNode    = "last-node"
	VetoNoCapacity  = "no-fitting-capacity"
	VetoNonIdle     = "non-idle"
)

// Veto records one rejected transfer proposal and why.
type Veto struct {
	// At is the virtual time of the observation that vetoed the move.
	At simclock.Time
	// From and To are pilot indices as the policy proposed them (possibly
	// out of range, for bad-proposal vetoes).
	From, To int
	// Reason is one of the Veto* constants.
	Reason string
}

// Controller samples per-pilot pressure on the virtual timeline and
// applies the steering policy's transfers through the pilots'
// grow/shrink mechanism. It enforces, independently of the policy:
//
//   - only transferable nodes move (up, no in-flight allocations —
//     cluster.RemoveNode re-checks),
//   - a donor never gives up its last operational (up) node,
//   - a node moves only if the receiver has a queued task its capacity
//     could actually host (no stranding a 0-GPU node on a GPU queue),
//   - frozen or inactive pilots neither donate nor receive.
type Controller struct {
	engine *simclock.Engine
	pilots []Elastic
	frozen []bool
	pol    Policy
	period time.Duration

	ticker *simclock.Ticker
	moves  []Move
	vetoes []Veto
	onMove func(Move)

	stats []Stat // scratch, reused per observation

	// Derivative state feeding Stat's windowed signals, maintained
	// incrementally across observations (one float and one int per
	// pilot — no history kept).
	utilWin   []float64
	prevQueue []int
	observed  bool

	// tel, when set, receives a log of every tick's stats and each
	// decision or veto; nil keeps the controller telemetry-free.
	tel *telemetry.Recorder

	stopped bool
}

// SetTelemetry attaches a telemetry recorder; every subsequent tick logs
// its observed stats, applied moves, and vetoes into it.
func (c *Controller) SetTelemetry(tel *telemetry.Recorder) { c.tel = tel }

// NewController builds a controller over the pilots. frozen marks
// pilots that opted out of steering (nil means all participate); onMove
// (optional) observes every applied transfer.
func NewController(engine *simclock.Engine, pilots []Elastic, frozen []bool, pol Policy, period time.Duration, onMove func(Move)) *Controller {
	if engine == nil || pol == nil {
		panic("steer: controller needs an engine and a policy")
	}
	if len(pilots) < 2 {
		panic("steer: steering needs at least two pilots")
	}
	if frozen == nil {
		frozen = make([]bool, len(pilots))
	}
	if len(frozen) != len(pilots) {
		panic("steer: frozen mask length mismatch")
	}
	if period <= 0 {
		period = DefaultPeriod
	}
	return &Controller{
		engine:    engine,
		pilots:    pilots,
		frozen:    frozen,
		pol:       pol,
		period:    period,
		onMove:    onMove,
		stats:     make([]Stat, len(pilots)),
		utilWin:   make([]float64, len(pilots)),
		prevQueue: make([]int, len(pilots)),
	}
}

// Start arms the observation ticker. The ticker keeps the event queue
// non-empty, so the campaign owner must Stop the controller once the
// real work has drained (exactly like fault injectors).
func (c *Controller) Start() {
	if c.ticker != nil || c.stopped {
		return
	}
	c.ticker = c.engine.Every(c.period, func(simclock.Time) { c.observe() })
}

// Stop retires the controller; further observations are no-ops.
func (c *Controller) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// Transfers returns the number of node transfers applied so far.
func (c *Controller) Transfers() int { return len(c.moves) }

// Moves returns a copy of the applied transfer log.
func (c *Controller) Moves() []Move { return append([]Move(nil), c.moves...) }

// Vetoes returns a copy of the rejected-proposal log.
func (c *Controller) Vetoes() []Veto { return append([]Veto(nil), c.vetoes...) }

// VetoCount returns the number of proposals vetoed so far.
func (c *Controller) VetoCount() int { return len(c.vetoes) }

// observe is one steering decision point: snapshot pressure, ask the
// policy, apply what survives validation.
func (c *Controller) observe() {
	if c.stopped {
		return
	}
	for i, p := range c.pilots {
		st := Stat{Frozen: c.frozen[i] || !p.Active()}
		if p.Active() {
			clu := p.Cluster()
			st.Queue = p.QueueLen()
			st.Running = p.RunningCount()
			st.Nodes = clu.UpNodeCount()
			st.Idle = len(clu.TransferableNodes())
			if cores := clu.CapCores(); cores > 0 {
				st.Util = float64(cores-clu.FreeCores()) / float64(cores)
			}
		}
		// Windowed derivatives, maintained incrementally. The first
		// observation seeds the EWMA and reports a zero delta.
		if c.observed {
			c.utilWin[i] = 0.5*c.utilWin[i] + 0.5*st.Util
			st.QueueDelta = st.Queue - c.prevQueue[i]
		} else {
			c.utilWin[i] = st.Util
		}
		st.UtilWindow = c.utilWin[i]
		c.prevQueue[i] = st.Queue
		c.stats[i] = st
	}
	c.observed = true

	movesBefore, vetoesBefore := len(c.moves), len(c.vetoes)
	for _, tr := range c.pol.Decide(c.stats) {
		c.apply(tr)
	}

	if c.tel.Enabled() {
		samples := make([]telemetry.PilotSample, len(c.stats))
		for i, st := range c.stats {
			samples[i] = telemetry.PilotSample{
				Queue: st.Queue, Running: st.Running, Nodes: st.Nodes,
				Idle: st.Idle, Frozen: st.Frozen, Util: st.Util,
				UtilWindow: st.UtilWindow, QueueDelta: st.QueueDelta,
			}
		}
		var actions []string
		for _, mv := range c.moves[movesBefore:] {
			actions = append(actions, fmt.Sprintf("move %d->%d (%dc/%dg/%dGB)",
				mv.From, mv.To, mv.Node.Cores, mv.Node.GPUs, mv.Node.MemGB))
		}
		for _, v := range c.vetoes[vetoesBefore:] {
			actions = append(actions, fmt.Sprintf("veto %d->%d: %s", v.From, v.To, v.Reason))
		}
		c.tel.Tick(c.engine.Now(), samples, actions)
	}
}

// apply validates and executes one proposed transfer. Invalid proposals
// are skipped: the policy layer may be wrong about the world (its
// snapshot ages as earlier transfers of the same observation land), the
// mechanism may not.
func (c *Controller) apply(tr Transfer) {
	if tr.From < 0 || tr.From >= len(c.pilots) || tr.To < 0 || tr.To >= len(c.pilots) || tr.From == tr.To {
		c.veto(tr, VetoBadProposal)
		return
	}
	if c.frozen[tr.From] || c.frozen[tr.To] {
		c.veto(tr, VetoFrozen)
		return
	}
	from, to := c.pilots[tr.From], c.pilots[tr.To]
	if !from.Active() || !to.Active() {
		c.veto(tr, VetoInactive)
		return
	}
	clu := from.Cluster()
	if clu.UpNodeCount() <= 1 {
		// Donating the last operational node would leave the pilot with
		// zero schedulable capacity (a crashed node still "belonging" to
		// it does not count until repair).
		c.veto(tr, VetoLastNode)
		return
	}
	id, ok := c.usefulNode(clu, to)
	if !ok {
		if c.preemptive() {
			if id, ok = c.busyUsefulNode(clu, to); ok {
				c.drain(tr, from, to, id)
				return
			}
		}
		c.veto(tr, VetoNoCapacity)
		return
	}
	nc, ch, err := from.ShrinkNode(id)
	if err != nil {
		// The node stopped being idle between snapshot and application;
		// skip rather than chase another — unless the policy is
		// preemptive, in which case the running work is checkpointed,
		// evicted, and resumed on the receiver.
		if c.preemptive() {
			c.drain(tr, from, to, id)
			return
		}
		c.veto(tr, VetoNonIdle)
		return
	}
	c.grow(tr, to, nc, ch, false)
}

// preemptive reports whether the active policy's transfers may drain
// busy nodes instead of taking the non-idle veto.
func (c *Controller) preemptive() bool {
	p, ok := c.pol.(preemptCapable)
	return ok && p.Preemptive()
}

// drain executes one preemptive transfer: checkpoint and evict the work
// resident on the donor's node, move the node, and let the evicted
// attempts resume on the receiver.
func (c *Controller) drain(tr Transfer, from, to Elastic, id int) {
	nc, ch, err := from.EvictNode(id, to.PilotID())
	if err != nil {
		c.veto(tr, VetoNonIdle)
		return
	}
	c.grow(tr, to, nc, ch, true)
}

// grow completes a validated transfer: hand the node to the receiver
// and log the move.
func (c *Controller) grow(tr Transfer, to Elastic, nc cluster.NodeCapacity, ch *fault.Chain, drained bool) {
	to.GrowNode(nc, ch)
	mv := Move{At: c.engine.Now(), From: tr.From, To: tr.To, Node: nc}
	c.moves = append(c.moves, mv)
	if c.tel.Enabled() {
		detail := fmt.Sprintf("%d->%d %dc/%dg/%dGB", tr.From, tr.To, nc.Cores, nc.GPUs, nc.MemGB)
		if drained {
			detail += " drained"
		}
		c.tel.Instant(mv.At, telemetry.KindSteerMove, tr.To, -1, detail)
	}
	if c.onMove != nil {
		c.onMove(mv)
	}
}

// veto logs one rejected proposal.
func (c *Controller) veto(tr Transfer, reason string) {
	v := Veto{At: c.engine.Now(), From: tr.From, To: tr.To, Reason: reason}
	c.vetoes = append(c.vetoes, v)
	if c.tel.Enabled() {
		pilot := tr.To
		if pilot < 0 || pilot >= len(c.pilots) {
			pilot = -1
		}
		c.tel.Instant(v.At, telemetry.KindSteerVeto, pilot, -1,
			fmt.Sprintf("%d->%d: %s", tr.From, tr.To, reason))
	}
}

// usefulNode picks the donor's lowest-ID transferable node whose
// capacity could host at least one of the receiver's queued tasks.
// Shipping a node the receiver cannot use would strand capacity where
// neither pilot can reach it.
func (c *Controller) usefulNode(donor *cluster.Cluster, to Elastic) (int, bool) {
	queued := to.QueuedRequests()
	for _, id := range donor.TransferableNodes() {
		nc := donor.NodeCap(id)
		if fitsAny(nc, queued) {
			return id, true
		}
	}
	return -1, false
}

// busyUsefulNode is usefulNode without the idle requirement: the
// donor's lowest-ID up node whose capacity could host one of the
// receiver's queued tasks, whatever is currently running on it. Only
// the preemptive drain path consults it.
func (c *Controller) busyUsefulNode(donor *cluster.Cluster, to Elastic) (int, bool) {
	queued := to.QueuedRequests()
	for id := 0; id < donor.NodeCount(); id++ {
		if donor.NodeIsRemoved(id) || donor.NodeIsDown(id) {
			continue
		}
		if fitsAny(donor.NodeCap(id), queued) {
			return id, true
		}
	}
	return -1, false
}

// fitsAny reports whether a node of the given capacity could host at
// least one of the queued requests.
func fitsAny(nc cluster.NodeCapacity, queued []cluster.Request) bool {
	for _, r := range queued {
		if r.Cores <= nc.Cores && r.GPUs <= nc.GPUs && r.MemGB <= nc.MemGB {
			return true
		}
	}
	return false
}
