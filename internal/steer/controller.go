package steer

import (
	"time"

	"impress/internal/cluster"
	"impress/internal/fault"
	"impress/internal/simclock"
)

// Elastic is the slice of the pilot mechanism the controller drives.
// *pilot.Pilot implements it; the interface keeps this package below
// internal/pilot in the dependency order (pilot validates steering
// names through this package).
type Elastic interface {
	// Active reports whether the pilot currently schedules tasks.
	Active() bool
	// QueueLen returns the number of tasks waiting for resources.
	QueueLen() int
	// RunningCount returns the number of placed tasks.
	RunningCount() int
	// QueuedRequests returns the allocation requests of the queued
	// tasks, in queue order.
	QueuedRequests() []cluster.Request
	// Cluster exposes the pilot's resource ledger.
	Cluster() *cluster.Cluster
	// ShrinkNode transfers the identified idle node out of the pilot,
	// returning its capacity and its detached crash chain (nil without a
	// crash model) — node fault ownership travels with the node.
	ShrinkNode(id int) (cluster.NodeCapacity, *fault.Chain, error)
	// GrowNode transfers a node of the given capacity into the pilot,
	// handing the donor's crash chain to the receiver's fault injector.
	GrowNode(nc cluster.NodeCapacity, ch *fault.Chain) int
}

// Move records one applied node transfer.
type Move struct {
	// At is the virtual time of the transfer.
	At simclock.Time
	// From and To are pilot indices in controller order.
	From, To int
	// Node is the transferred capacity.
	Node cluster.NodeCapacity
}

// Controller samples per-pilot pressure on the virtual timeline and
// applies the steering policy's transfers through the pilots'
// grow/shrink mechanism. It enforces, independently of the policy:
//
//   - only transferable nodes move (up, no in-flight allocations —
//     cluster.RemoveNode re-checks),
//   - a donor never gives up its last operational (up) node,
//   - a node moves only if the receiver has a queued task its capacity
//     could actually host (no stranding a 0-GPU node on a GPU queue),
//   - frozen or inactive pilots neither donate nor receive.
type Controller struct {
	engine *simclock.Engine
	pilots []Elastic
	frozen []bool
	pol    Policy
	period time.Duration

	ticker *simclock.Ticker
	moves  []Move
	onMove func(Move)

	stats   []Stat // scratch, reused per observation
	stopped bool
}

// NewController builds a controller over the pilots. frozen marks
// pilots that opted out of steering (nil means all participate); onMove
// (optional) observes every applied transfer.
func NewController(engine *simclock.Engine, pilots []Elastic, frozen []bool, pol Policy, period time.Duration, onMove func(Move)) *Controller {
	if engine == nil || pol == nil {
		panic("steer: controller needs an engine and a policy")
	}
	if len(pilots) < 2 {
		panic("steer: steering needs at least two pilots")
	}
	if frozen == nil {
		frozen = make([]bool, len(pilots))
	}
	if len(frozen) != len(pilots) {
		panic("steer: frozen mask length mismatch")
	}
	if period <= 0 {
		period = DefaultPeriod
	}
	return &Controller{
		engine: engine,
		pilots: pilots,
		frozen: frozen,
		pol:    pol,
		period: period,
		onMove: onMove,
		stats:  make([]Stat, len(pilots)),
	}
}

// Start arms the observation ticker. The ticker keeps the event queue
// non-empty, so the campaign owner must Stop the controller once the
// real work has drained (exactly like fault injectors).
func (c *Controller) Start() {
	if c.ticker != nil || c.stopped {
		return
	}
	c.ticker = c.engine.Every(c.period, func(simclock.Time) { c.observe() })
}

// Stop retires the controller; further observations are no-ops.
func (c *Controller) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// Transfers returns the number of node transfers applied so far.
func (c *Controller) Transfers() int { return len(c.moves) }

// Moves returns a copy of the applied transfer log.
func (c *Controller) Moves() []Move { return append([]Move(nil), c.moves...) }

// observe is one steering decision point: snapshot pressure, ask the
// policy, apply what survives validation.
func (c *Controller) observe() {
	if c.stopped {
		return
	}
	for i, p := range c.pilots {
		st := Stat{Frozen: c.frozen[i] || !p.Active()}
		if p.Active() {
			clu := p.Cluster()
			st.Queue = p.QueueLen()
			st.Running = p.RunningCount()
			st.Nodes = clu.UpNodeCount()
			st.Idle = len(clu.TransferableNodes())
		}
		c.stats[i] = st
	}
	for _, tr := range c.pol.Decide(c.stats) {
		c.apply(tr)
	}
}

// apply validates and executes one proposed transfer. Invalid proposals
// are skipped: the policy layer may be wrong about the world (its
// snapshot ages as earlier transfers of the same observation land), the
// mechanism may not.
func (c *Controller) apply(tr Transfer) {
	if tr.From < 0 || tr.From >= len(c.pilots) || tr.To < 0 || tr.To >= len(c.pilots) || tr.From == tr.To {
		return
	}
	if c.frozen[tr.From] || c.frozen[tr.To] {
		return
	}
	from, to := c.pilots[tr.From], c.pilots[tr.To]
	if !from.Active() || !to.Active() {
		return
	}
	clu := from.Cluster()
	if clu.UpNodeCount() <= 1 {
		// Donating the last operational node would leave the pilot with
		// zero schedulable capacity (a crashed node still "belonging" to
		// it does not count until repair).
		return
	}
	id, ok := c.usefulNode(clu, to)
	if !ok {
		return
	}
	nc, ch, err := from.ShrinkNode(id)
	if err != nil {
		// The node stopped being idle between snapshot and application;
		// skip rather than chase another.
		return
	}
	to.GrowNode(nc, ch)
	mv := Move{At: c.engine.Now(), From: tr.From, To: tr.To, Node: nc}
	c.moves = append(c.moves, mv)
	if c.onMove != nil {
		c.onMove(mv)
	}
}

// usefulNode picks the donor's lowest-ID transferable node whose
// capacity could host at least one of the receiver's queued tasks.
// Shipping a node the receiver cannot use would strand capacity where
// neither pilot can reach it.
func (c *Controller) usefulNode(donor *cluster.Cluster, to Elastic) (int, bool) {
	queued := to.QueuedRequests()
	for _, id := range donor.TransferableNodes() {
		nc := donor.NodeCap(id)
		for _, r := range queued {
			if r.Cores <= nc.Cores && r.GPUs <= nc.GPUs && r.MemGB <= nc.MemGB {
				return id, true
			}
		}
	}
	return -1, false
}
