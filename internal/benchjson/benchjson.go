// Package benchjson serializes Go benchmark results into the repository's
// BENCH_<n>.json perf-trajectory artifacts.
//
// Every performance PR records its headline benchmarks in a BENCH_<n>.json
// file (n = the PR number), so the repository accumulates a machine-readable
// speed trajectory: the same benchmark names, run after run, with ns/op,
// allocs/op, and the scientific side-metrics the benchmarks report. CI
// regenerates the file at -benchtime 1x as a smoke check and uploads it as
// an artifact; deliberate regenerations on a quiet machine are committed.
package benchjson

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"

	"impress/internal/artifact"
)

// Result is one benchmark's measured record.
type Result struct {
	// Name is the full benchmark name (e.g. "BenchmarkScreenScaling/targets=32").
	Name string `json:"name"`
	// Runs is the number of iterations the measurement averaged over (b.N).
	Runs int `json:"runs"`
	// NsPerOp is wall time per iteration in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are the allocator counters per iteration.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Metrics carries every b.ReportMetric extra (cpu%, traj, makespan-h…),
	// keyed by unit, sorted on output via MarshalJSON's map ordering.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// FromBenchmark converts a testing.Benchmark result. The benchmark must
// have been run with allocation reporting (testing.Benchmark always
// records MemAllocs/MemBytes).
func FromBenchmark(name string, r testing.BenchmarkResult) Result {
	res := Result{
		Name:        name,
		Runs:        r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		res.Metrics = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			res.Metrics[k] = v
		}
	}
	return res
}

// File is one BENCH_<n>.json document.
type File struct {
	// Schema versions the document layout.
	Schema int `json:"schema"`
	// PR is the pull-request number this trajectory point belongs to.
	PR int `json:"pr"`
	// GoVersion/GOOS/GOARCH describe the measuring toolchain and host.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Note is free-form context (machine caveats, benchtime used).
	Note string `json:"note,omitempty"`
	// Results are this PR's measurements, sorted by name.
	Results []Result `json:"results"`
	// Baseline, when present, holds the same benchmarks measured on the
	// commit before this PR, so the file records the delta it claims.
	Baseline []Result `json:"baseline,omitempty"`
}

// NewFile returns a File stamped with the current toolchain and host.
func NewFile(pr int, results []Result) File {
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return File{
		Schema:    1,
		PR:        pr,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   results,
	}
}

// Write serializes f as indented JSON.
func Write(w io.Writer, f File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteFile writes f to path, creating or truncating it, through the
// shared loss-proof artifact path (write and close errors both surface).
func WriteFile(path string, f File) error {
	return artifact.WriteFile(path, func(w io.Writer) error {
		return Write(w, f)
	})
}

// ReadFile parses a BENCH_<n>.json document.
func ReadFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, err
	}
	return f, nil
}
