package benchjson

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"
)

func TestFromBenchmark(t *testing.T) {
	r := testing.BenchmarkResult{
		N:         4,
		T:         2 * time.Second,
		MemAllocs: 400,
		MemBytes:  4096,
		Extra:     map[string]float64{"cpu%": 93.5},
	}
	res := FromBenchmark("BenchmarkX/case=1", r)
	if res.Name != "BenchmarkX/case=1" || res.Runs != 4 {
		t.Fatalf("identity fields wrong: %+v", res)
	}
	if res.NsPerOp != 5e8 {
		t.Fatalf("NsPerOp = %v, want 5e8", res.NsPerOp)
	}
	if res.AllocsPerOp != 100 || res.BytesPerOp != 1024 {
		t.Fatalf("allocator counters wrong: %+v", res)
	}
	if res.Metrics["cpu%"] != 93.5 {
		t.Fatalf("extra metric lost: %+v", res.Metrics)
	}
}

func TestWriteAndReadRoundTrip(t *testing.T) {
	f := NewFile(4, []Result{
		{Name: "B/z", Runs: 1, NsPerOp: 2},
		{Name: "B/a", Runs: 1, NsPerOp: 1},
	})
	f.Baseline = []Result{{Name: "B/a", Runs: 1, NsPerOp: 3}}
	f.Note = "test"

	if f.Results[0].Name != "B/a" {
		t.Fatal("NewFile did not sort results by name")
	}
	if f.Schema != 1 || f.PR != 4 || f.GoVersion == "" {
		t.Fatalf("file header wrong: %+v", f)
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(f)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip diverged:\n%s\n%s", a, b)
	}
}
