package scenariorun

// Satellite regression tests: a -csv request must never be silently
// ignored. When the scenario has no CSV report, or every campaign
// failed, the command says so on stderr instead of exiting as if the
// artifact had been produced.

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"impress/internal/campaign"
	"impress/internal/core"
	"impress/internal/workload"
)

func register(t *testing.T, s campaign.Scenario) {
	t.Helper()
	if err := campaign.Register(s); err != nil {
		t.Fatal(err)
	}
}

// miniCampaign is a small adaptive campaign that completes in well under
// a second.
func miniCampaign(t *testing.T, name string) campaign.Campaign {
	t.Helper()
	target, err := workload.NewTarget(9, "SRUN", 50, workload.AlphaSynucleinTail4, workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.AdaptiveConfig(9)
	cfg.Pipeline.Cycles = 1
	cfg.Pipeline.MPNN.NumSequences = 4
	cfg.Pipeline.MPNN.Sweeps = 2
	return campaign.Campaign{Name: name, Seed: 9, Targets: []*workload.Target{target}, Config: cfg}
}

func TestRunWarnsWhenScenarioHasNoCSVReport(t *testing.T) {
	register(t, campaign.Scenario{
		Name:  "srun-nocsv",
		Build: func(campaign.Params) ([]campaign.Campaign, error) { return nil, nil },
	})
	csv := filepath.Join(t.TempDir(), "out.csv")
	var stdout, stderr strings.Builder
	code := Run(&stdout, &stderr, "srun-nocsv", campaign.Params{}, 1, csv, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "declares no CSV report") {
		t.Fatalf("no warning for a requested-but-undeclared CSV; stderr: %q", stderr.String())
	}
	if _, err := os.Stat(csv); err == nil {
		t.Fatal("CSV written despite the scenario declaring none")
	}
}

func TestRunWarnsWhenEveryCampaignFailed(t *testing.T) {
	register(t, campaign.Scenario{
		Name: "srun-allfail",
		Build: func(campaign.Params) ([]campaign.Campaign, error) {
			// No targets: the coordinator rejects the campaign at
			// construction, so every cell of the scenario fails.
			return []campaign.Campaign{{Name: "doomed", Config: core.AdaptiveConfig(1)}}, nil
		},
		ReportCSV: func(w io.Writer, _ []*core.Result) error {
			_, err := io.WriteString(w, "never\n")
			return err
		},
	})
	csv := filepath.Join(t.TempDir(), "out.csv")
	var stdout, stderr strings.Builder
	code := Run(&stdout, &stderr, "srun-allfail", campaign.Params{}, 1, csv, "")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (a campaign failed)", code)
	}
	if !strings.Contains(stderr.String(), "not written") {
		t.Fatalf("no warning for the missing CSV; stderr: %q", stderr.String())
	}
	if _, err := os.Stat(csv); err == nil {
		t.Fatal("CSV written despite zero completed campaigns")
	}
}

func TestRunWritesDeclaredCSV(t *testing.T) {
	register(t, campaign.Scenario{
		Name: "srun-ok",
		Build: func(campaign.Params) ([]campaign.Campaign, error) {
			return []campaign.Campaign{miniCampaign(t, "srun-ok/mini")}, nil
		},
		ReportCSV: func(w io.Writer, results []*core.Result) error {
			_, err := io.WriteString(w, "rows\n")
			return err
		},
	})
	csv := filepath.Join(t.TempDir(), "out.csv")
	var stdout, stderr strings.Builder
	code := Run(&stdout, &stderr, "srun-ok", campaign.Params{}, 1, csv, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "rows\n" {
		t.Fatalf("CSV content %q", data)
	}
	if !strings.Contains(stdout.String(), "wrote "+csv) {
		t.Fatalf("no wrote line; stdout: %q", stdout.String())
	}
}

// TestRunFailsOnUnwritableCSV: the loss-proof write path turns an
// unwritable destination into a non-zero exit with a message.
func TestRunFailsOnUnwritableCSV(t *testing.T) {
	register(t, campaign.Scenario{
		Name: "srun-unwritable",
		Build: func(campaign.Params) ([]campaign.Campaign, error) {
			return []campaign.Campaign{miniCampaign(t, "srun-unwritable/mini")}, nil
		},
		ReportCSV: func(w io.Writer, _ []*core.Result) error {
			_, err := io.WriteString(w, "rows\n")
			return err
		},
	})
	csv := filepath.Join(t.TempDir(), "missing-dir", "out.csv")
	var stdout, stderr strings.Builder
	code := Run(&stdout, &stderr, "srun-unwritable", campaign.Params{}, 1, csv, "")
	if code != 1 {
		t.Fatalf("exit %d, want 1 for an unwritable CSV", code)
	}
	if stderr.Len() == 0 {
		t.Fatal("no error message for the unwritable CSV")
	}
}
