// Package scenariorun executes a registered campaign scenario on the
// campaign engine and renders the standard CLI output — one summary per
// campaign, the scenario's cross-campaign report, and its CSV companion.
//
// All three impress commands expose the scenario registry through this
// package, so a workload registered once in internal/campaign (pair,
// sweep, screen, stress, policy-compare, fault-sweep, mega-screen…) is
// reachable from every binary without each main reimplementing the
// build/run/report loop.
package scenariorun

import (
	"fmt"
	"io"

	"impress/internal/artifact"
	"impress/internal/campaign"
	"impress/internal/core"
	"impress/internal/report"
	"impress/internal/telemetry"
)

// Run builds the named scenario with p, executes it on workers engine
// workers, and writes human-readable output to stdout and failures to
// stderr. When csvPath is non-empty and the scenario declares a CSV
// report, it is written there. When chromePath is non-empty, telemetry
// is switched on and every completed campaign's timeline is written
// there in Chrome Trace Event Format (one Perfetto process track per
// pilot). The return value is the process exit code: 0 on full success,
// 1 when any campaign failed, 2 on a build error.
func Run(stdout, stderr io.Writer, name string, p campaign.Params, workers int, csvPath, chromePath string) int {
	if chromePath != "" {
		p.Telemetry = true
	}
	campaigns, err := campaign.Build(name, p)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	sc, _ := campaign.Lookup(name)
	fmt.Fprintf(stdout, "scenario %s: %d campaigns on %d workers\n\n",
		name, len(campaigns), campaign.NewEngine(workers).WorkersFor(len(campaigns)))
	outs := campaign.Run(campaigns, workers)
	failed := 0
	var results []*core.Result
	var labels []string
	for _, o := range outs {
		if o.Err != nil {
			failed++
			fmt.Fprintf(stderr, "%s failed: %v\n", o.Name, o.Err)
			continue
		}
		results = append(results, o.Result)
		labels = append(labels, o.Name)
		fmt.Fprintf(stdout, "%-20s %s\n\n", o.Name, report.Summary(o.Result))
	}
	if sc.Report != nil && len(results) > 0 {
		fmt.Fprintln(stdout, sc.Report(results))
	}
	if csvPath != "" {
		// A requested artifact is never silently missing: when the
		// scenario has no CSV report — or every campaign failed and there
		// is nothing to write — say so instead of exiting as if the file
		// had been produced.
		switch {
		case sc.ReportCSV == nil:
			fmt.Fprintf(stderr, "warning: scenario %s declares no CSV report; %s not written\n", name, csvPath)
		case len(results) == 0:
			fmt.Fprintf(stderr, "warning: no campaign completed; %s not written\n", csvPath)
		default:
			if err := artifact.WriteFile(csvPath, func(w io.Writer) error {
				return sc.ReportCSV(w, results)
			}); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", csvPath)
		}
	}
	if chromePath != "" {
		// Same artifact discipline as the CSV: a requested trace is never
		// silently missing.
		if len(results) == 0 {
			fmt.Fprintf(stderr, "warning: no campaign completed; %s not written\n", chromePath)
		} else {
			cts := make([]telemetry.CampaignTrace, len(results))
			for i, r := range results {
				cts[i] = r.CampaignTrace(labels[i])
			}
			if err := artifact.WriteFile(chromePath, func(w io.Writer) error {
				return telemetry.WriteChromeTrace(w, cts)
			}); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", chromePath)
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "%d/%d campaigns failed\n", failed, len(outs))
		return 1
	}
	return 0
}
