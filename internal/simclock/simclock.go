// Package simclock implements the deterministic discrete-event engine that
// gives the IMPRESS reproduction its virtual time base.
//
// The paper's evaluation ran for 27.7–38.3 wall-clock hours on an HPC node;
// every reported quantity (utilization percentages, phase breakdowns,
// makespan) is an integral over that timeline. Rather than sleeping, the
// reproduction advances a virtual clock between events, so a full campaign
// replays in milliseconds while producing the identical timeline on every
// run. Events that share a timestamp fire in submission (FIFO) order, which
// makes the whole middleware stack — scheduler, executor, coordinator —
// bit-for-bit reproducible.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since engine start.
type Time int64

// Duration re-exports time.Duration for call-site brevity.
type Duration = time.Duration

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Hours returns the time as floating-point hours.
func (t Time) Hours() float64 { return float64(t) / float64(time.Hour) }

// Duration converts the absolute time into a duration since engine start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the time advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

func (t Time) String() string { return time.Duration(t).String() }

// FromHours converts floating-point hours to a Time offset.
func FromHours(h float64) Time { return Time(h * float64(time.Hour)) }

// Event is a scheduled callback. Events are created via Engine.At/After and
// may be cancelled until they fire.
type Event struct {
	when  Time
	seq   uint64
	index int // heap index, -1 once popped or cancelled
	fn    func()
	name  string
}

// When returns the virtual time at which the event is scheduled.
func (e *Event) When() Time { return e.when }

// Name returns the optional debug label attached at scheduling time.
func (e *Event) Name() string { return e.name }

// Pending reports whether the event is still queued (not fired, not
// cancelled).
func (e *Event) Pending() bool { return e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event executor. It is not safe for
// concurrent use; all middleware components in this repository are driven
// from within engine events, which serializes them by construction.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	fired  uint64
}

// New returns an engine positioned at virtual time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality, which in a DES is always a
// bug in the caller.
func (e *Engine) At(t Time, fn func()) *Event {
	return e.AtNamed(t, "", fn)
}

// AtNamed is At with a debug label attached to the event.
func (e *Engine) AtNamed(t Time, name string, fn func()) *Event {
	if fn == nil {
		panic("simclock: nil event function")
	}
	if t < e.now {
		panic(fmt.Sprintf("simclock: scheduling event %q at %v before now %v", name, t, e.now))
	}
	ev := &Event{when: t, seq: e.seq, fn: fn, name: name}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current virtual time. Negative d
// panics.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// AfterNamed is After with a debug label.
func (e *Engine) AfterNamed(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return e.AtNamed(e.now.Add(d), name, fn)
}

// Defer schedules fn at the current time, after all events already queued
// for this instant. It is the DES analogue of "run this as soon as the
// current cascade settles".
func (e *Engine) Defer(fn func()) *Event {
	return e.At(e.now, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op, so callers can cancel
// unconditionally on teardown paths.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.events, ev.index)
	ev.fn = nil
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It returns false if no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.when
	fn := ev.fn
	ev.fn = nil
	e.fired++
	fn()
	return true
}

// Run fires events until none remain and returns how many fired. A safety
// limit guards against runaway self-rescheduling loops; hitting it panics
// because it always indicates a middleware bug rather than a long workload.
func (e *Engine) Run() uint64 {
	const limit = 500_000_000
	start := e.fired
	for e.Step() {
		if e.fired-start > limit {
			panic("simclock: event limit exceeded; self-rescheduling loop?")
		}
	}
	return e.fired - start
}

// RunUntil fires events with timestamps <= t, then advances the clock to
// exactly t (even if no event lies there). It returns how many events
// fired.
func (e *Engine) RunUntil(t Time) uint64 {
	if t < e.now {
		panic(fmt.Sprintf("simclock: RunUntil(%v) is before now %v", t, e.now))
	}
	start := e.fired
	for len(e.events) > 0 && e.events[0].when <= t {
		e.Step()
	}
	e.now = t
	return e.fired - start
}

// Ticker invokes fn every interval until cancel is called or the returned
// stop function is invoked. The first tick fires one interval from now.
// Tickers keep the event queue non-empty, so experiments that use them must
// bound execution with RunUntil or stop the ticker from another event.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	fn       func(Time)
	ev       *Event
	stopped  bool
}

// Every creates and starts a ticker.
func (e *Engine) Every(interval time.Duration, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("simclock: non-positive ticker interval")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.engine.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn(t.engine.Now())
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.engine.Cancel(t.ev)
}
