// Package simclock implements the deterministic discrete-event engine that
// gives the IMPRESS reproduction its virtual time base.
//
// The paper's evaluation ran for 27.7–38.3 wall-clock hours on an HPC node;
// every reported quantity (utilization percentages, phase breakdowns,
// makespan) is an integral over that timeline. Rather than sleeping, the
// reproduction advances a virtual clock between events, so a full campaign
// replays in milliseconds while producing the identical timeline on every
// run. Events that share a timestamp fire in submission (FIFO) order, which
// makes the whole middleware stack — scheduler, executor, coordinator —
// bit-for-bit reproducible.
//
// The engine's scheduling hot path is allocation-free in steady state:
// fired and cancelled event structs return to a free list and are reused by
// later schedules, and debug names are stored as up-to-three string parts
// that are only concatenated when Name is actually called (debug paths),
// never when an event is scheduled.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since engine start.
type Time int64

// Duration re-exports time.Duration for call-site brevity.
type Duration = time.Duration

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Hours returns the time as floating-point hours.
func (t Time) Hours() float64 { return float64(t) / float64(time.Hour) }

// Duration converts the absolute time into a duration since engine start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the time advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

func (t Time) String() string { return time.Duration(t).String() }

// FromHours converts floating-point hours to a Time offset.
func FromHours(h float64) Time { return Time(h * float64(time.Hour)) }

// event is the pooled scheduling record. Callers never see it directly:
// they hold Event handles, which pair the struct pointer with the
// generation it was scheduled under, so a handle kept past its event's
// firing (or cancellation, or the struct's reuse for a later event) is
// detectably stale and every operation on it is a safe no-op.
type event struct {
	when  Time
	seq   uint64
	index int    // heap index, -1 once popped or cancelled
	gen   uint64 // bumped on every retire; live handles must match
	fn    func()
	// Debug name parts, concatenated lazily by Event.Name. Hot call sites
	// pass pre-existing strings (task ID, a constant kind, a phase name)
	// so scheduling never builds a name string.
	name0, name1, name2 string
}

// Event is a handle to a scheduled callback, created via Engine.At/After
// and their named variants. The zero value is a null handle: not pending,
// and cancelling it is a no-op. Handles stay valid (as inert stale
// handles) after their event fires or is cancelled, so teardown paths can
// cancel unconditionally.
type Event struct {
	e   *event
	gen uint64
}

// live reports whether the handle still refers to its queued event.
func (ev Event) live() bool { return ev.e != nil && ev.e.gen == ev.gen && ev.e.index >= 0 }

// When returns the virtual time at which the event is scheduled, or zero
// when the handle is stale (fired, cancelled, or null).
func (ev Event) When() Time {
	if !ev.live() {
		return 0
	}
	return ev.e.when
}

// Name returns the debug label attached at scheduling time, or "" when
// the handle is stale. The label is assembled on demand — scheduling only
// stores its parts.
func (ev Event) Name() string {
	if !ev.live() {
		return ""
	}
	return ev.e.name0 + ev.e.name1 + ev.e.name2
}

// Pending reports whether the event is still queued (not fired, not
// cancelled).
func (ev Event) Pending() bool { return ev.live() }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event executor. It is not safe for
// concurrent use; all middleware components in this repository are driven
// from within engine events, which serializes them by construction.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	fired  uint64
	free   []*event // retired event structs awaiting reuse
}

// New returns an engine positioned at virtual time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.events) }

// alloc takes an event struct from the free list (or the heap allocator
// when the list is empty) and schedules it.
func (e *Engine) alloc(t Time, name0, name1, name2 string, fn func()) Event {
	if fn == nil {
		panic("simclock: nil event function")
	}
	if t < e.now {
		panic(fmt.Sprintf("simclock: scheduling event %q at %v before now %v", name0+name1+name2, t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.when = t
	ev.seq = e.seq
	ev.fn = fn
	ev.name0, ev.name1, ev.name2 = name0, name1, name2
	e.seq++
	heap.Push(&e.events, ev)
	return Event{e: ev, gen: ev.gen}
}

// retire returns a popped or removed event struct to the free list,
// invalidating every outstanding handle to it.
func (e *Engine) retire(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.name0, ev.name1, ev.name2 = "", "", ""
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality, which in a DES is always a
// bug in the caller.
func (e *Engine) At(t Time, fn func()) Event {
	return e.alloc(t, "", "", "", fn)
}

// AtNamed is At with a debug label attached to the event.
func (e *Engine) AtNamed(t Time, name string, fn func()) Event {
	return e.alloc(t, name, "", "", fn)
}

// After schedules fn to run d after the current virtual time. Negative d
// panics.
func (e *Engine) After(d time.Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return e.alloc(e.now.Add(d), "", "", "", fn)
}

// AfterNamed is After with a debug label.
func (e *Engine) AfterNamed(d time.Duration, name string, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return e.alloc(e.now.Add(d), name, "", "", fn)
}

// AfterTagged is After with a debug label given as three pre-existing
// parts (typically a task ID, a constant kind like ":phase:", and an
// optional detail). The parts are stored as-is and only concatenated if
// Name is called, so hot scheduling paths build no strings.
func (e *Engine) AfterTagged(d time.Duration, id, kind, detail string, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return e.alloc(e.now.Add(d), id, kind, detail, fn)
}

// Defer schedules fn at the current time, after all events already queued
// for this instant. It is the DES analogue of "run this as soon as the
// current cascade settles".
func (e *Engine) Defer(fn func()) Event {
	return e.At(e.now, fn)
}

// Cancel removes a pending event. Cancelling a stale handle — already
// fired, already cancelled, or the zero Event — is a no-op, so callers can
// cancel unconditionally on teardown paths.
func (e *Engine) Cancel(ev Event) {
	if !ev.live() {
		return
	}
	heap.Remove(&e.events, ev.e.index)
	e.retire(ev.e)
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It returns false if no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.when
	fn := ev.fn
	e.retire(ev)
	e.fired++
	fn()
	return true
}

// Run fires events until none remain and returns how many fired. A safety
// limit guards against runaway self-rescheduling loops; hitting it panics
// because it always indicates a middleware bug rather than a long workload.
func (e *Engine) Run() uint64 {
	const limit = 500_000_000
	start := e.fired
	for e.Step() {
		if e.fired-start > limit {
			panic("simclock: event limit exceeded; self-rescheduling loop?")
		}
	}
	return e.fired - start
}

// RunUntil fires events with timestamps <= t, then advances the clock to
// exactly t (even if no event lies there). It returns how many events
// fired.
func (e *Engine) RunUntil(t Time) uint64 {
	if t < e.now {
		panic(fmt.Sprintf("simclock: RunUntil(%v) is before now %v", t, e.now))
	}
	start := e.fired
	for len(e.events) > 0 && e.events[0].when <= t {
		e.Step()
	}
	e.now = t
	return e.fired - start
}

// Ticker invokes fn every interval until cancel is called or the returned
// stop function is invoked. The first tick fires one interval from now.
// Tickers keep the event queue non-empty, so experiments that use them must
// bound execution with RunUntil or stop the ticker from another event.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	fn       func(Time)
	ev       Event
	stopped  bool
}

// Every creates and starts a ticker.
func (e *Engine) Every(interval time.Duration, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("simclock: non-positive ticker interval")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.engine.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn(t.engine.Now())
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.engine.Cancel(t.ev)
}
