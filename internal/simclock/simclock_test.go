package simclock

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"impress/internal/xrand"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var got []int
	e.After(30*time.Minute, func() { got = append(got, 3) })
	e.After(10*time.Minute, func() { got = append(got, 1) })
	e.After(20*time.Minute, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", got)
	}
	if e.Now() != Time(30*time.Minute) {
		t.Fatalf("clock ended at %v, want 30m", e.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		e.At(Time(time.Hour), func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-timestamp events fired out of submission order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var trace []string
	e.After(time.Second, func() {
		trace = append(trace, "outer")
		e.After(time.Second, func() { trace = append(trace, "inner") })
	})
	n := e.Run()
	if n != 2 {
		t.Fatalf("fired %d events, want 2", n)
	}
	if e.Now() != Time(2*time.Second) {
		t.Fatalf("now = %v, want 2s", e.Now())
	}
	if len(trace) != 2 || trace[0] != "outer" || trace[1] != "inner" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.After(time.Second, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event not pending after scheduling")
	}
	e.Cancel(ev)
	if ev.Pending() {
		t.Fatal("event still pending after cancel")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and zero-handle cancel must be no-ops.
	e.Cancel(ev)
	e.Cancel(Event{})
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []int
	evs := make([]Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.After(time.Duration(i+1)*time.Second, func() { got = append(got, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*time.Hour, func() { count++ })
	}
	fired := e.RunUntil(Time(5 * time.Hour))
	if fired != 5 || count != 5 {
		t.Fatalf("RunUntil fired %d (count %d), want 5", fired, count)
	}
	if e.Now() != Time(5*time.Hour) {
		t.Fatalf("now = %v, want 5h", e.Now())
	}
	// Advancing to a time with no events still moves the clock.
	e.RunUntil(Time(5*time.Hour + 30*time.Minute))
	if e.Now() != Time(5*time.Hour+30*time.Minute) {
		t.Fatalf("now = %v", e.Now())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.After(time.Hour, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(Time(time.Minute), func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-time.Second, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event fn did not panic")
		}
	}()
	e.At(0, nil)
}

func TestDeferRunsAfterCurrentInstant(t *testing.T) {
	e := New()
	var got []string
	e.At(Time(time.Second), func() {
		e.Defer(func() { got = append(got, "deferred") })
		got = append(got, "first")
	})
	e.At(Time(time.Second), func() { got = append(got, "second") })
	e.Run()
	want := []string{"first", "second", "deferred"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if e.Now() != Time(time.Second) {
		t.Fatalf("Defer advanced the clock: %v", e.Now())
	}
}

func TestTicker(t *testing.T) {
	e := New()
	var ticks []Time
	tk := e.Every(10*time.Minute, func(now Time) { ticks = append(ticks, now) })
	e.RunUntil(Time(time.Hour))
	tk.Stop()
	e.Run()
	if len(ticks) != 6 {
		t.Fatalf("got %d ticks, want 6: %v", len(ticks), ticks)
	}
	for i, tick := range ticks {
		want := Time(time.Duration(i+1) * 10 * time.Minute)
		if tick != want {
			t.Fatalf("tick %d at %v, want %v", i, tick, want)
		}
	}
}

func TestTickerStopFromWithinTick(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = e.Every(time.Minute, func(Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times after in-tick stop, want 3", count)
	}
}

func TestFiredAndPendingCounters(t *testing.T) {
	e := New()
	e.After(time.Second, func() {})
	e.After(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Fired() != 2 || e.Pending() != 0 {
		t.Fatalf("Fired = %d Pending = %d", e.Fired(), e.Pending())
	}
}

// Property: for any random batch of events, the observed fire order is the
// stable sort of (time, submission index).
func TestPropertyFireOrderMatchesStableSort(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		rng := xrand.New(seed)
		e := New()
		type item struct {
			at  Time
			idx int
		}
		items := make([]item, n)
		var got []int
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(20)) * Time(time.Minute)
			items[i] = item{at, i}
			i := i
			e.At(at, func() { got = append(got, i) })
		}
		sort.SliceStable(items, func(a, b int) bool { return items[a].at < items[b].at })
		e.Run()
		for i := range items {
			if got[i] != items[i].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := FromHours(2.5)
	if tm.Hours() != 2.5 {
		t.Fatalf("Hours = %v", tm.Hours())
	}
	if tm.Seconds() != 9000 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
	if tm.Add(30*time.Minute).Hours() != 3 {
		t.Fatal("Add broken")
	}
	if tm.Sub(FromHours(1)) != 90*time.Minute {
		t.Fatal("Sub broken")
	}
	if tm.Duration() != 150*time.Minute {
		t.Fatal("Duration broken")
	}
	if FromHours(1).String() != "1h0m0s" {
		t.Fatalf("String = %q", FromHours(1).String())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.After(time.Duration(j%17)*time.Second, func() {})
		}
		e.Run()
	}
}
