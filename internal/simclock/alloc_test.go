package simclock

import (
	"testing"
	"time"
)

// TestSteadyStateSchedulingAllocationFree guards the engine's event pool:
// once warm, scheduling and firing events — named or not — must not touch
// the allocator. This is the regression fence for the simulation hot
// path; any future change that re-introduces per-event garbage (a name
// string, a fresh Event struct, a closure in the engine) fails here.
func TestSteadyStateSchedulingAllocationFree(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		e.AfterTagged(time.Second, "task.000001", ":phase:", "msa", fn)
	}
	e.Run()

	if avg := testing.AllocsPerRun(1000, func() {
		e.AfterTagged(time.Millisecond, "task.000001", ":phase:", "msa", fn)
		e.Step()
	}); avg != 0 {
		t.Fatalf("steady-state AfterTagged+Step allocates %.1f objects per event, want 0", avg)
	}

	if avg := testing.AllocsPerRun(1000, func() {
		e.After(time.Millisecond, fn)
		e.Step()
	}); avg != 0 {
		t.Fatalf("steady-state After+Step allocates %.1f objects per event, want 0", avg)
	}

	if avg := testing.AllocsPerRun(1000, func() {
		ev := e.After(time.Millisecond, fn)
		e.Cancel(ev)
	}); avg != 0 {
		t.Fatalf("steady-state After+Cancel allocates %.1f objects per event, want 0", avg)
	}
}

// TestPoolReuseInvalidatesStaleHandles proves the safety property that
// makes pooling legal: a handle kept past its event's firing goes inert,
// and cancelling it cannot disturb the unrelated event that recycled the
// struct.
func TestPoolReuseInvalidatesStaleHandles(t *testing.T) {
	e := New()
	stale := e.After(time.Second, func() {})
	e.Run()
	if stale.Pending() {
		t.Fatal("fired event still pending through its handle")
	}
	if stale.Name() != "" || stale.When() != 0 {
		t.Fatal("stale handle leaks recycled event state")
	}

	// The recycled struct now carries an innocent pending event; the
	// stale handle must not be able to cancel it.
	fired := false
	fresh := e.AfterNamed(time.Second, "innocent", func() { fired = true })
	e.Cancel(stale)
	if !fresh.Pending() {
		t.Fatal("cancelling a stale handle killed the event that reused its struct")
	}
	e.Run()
	if !fired {
		t.Fatal("innocent event did not fire")
	}
}

// TestLazyNameAssembly pins the deferred-name contract: parts given to
// AfterTagged come back concatenated while the event is pending.
func TestLazyNameAssembly(t *testing.T) {
	e := New()
	ev := e.AfterTagged(time.Second, "task.000042", ":phase:", "inference", func() {})
	if got := ev.Name(); got != "task.000042:phase:inference" {
		t.Fatalf("Name() = %q", got)
	}
	if got := ev.When(); got != Time(time.Second) {
		t.Fatalf("When() = %v", got)
	}
	named := e.AfterNamed(time.Second, "plain", func() {})
	if got := named.Name(); got != "plain" {
		t.Fatalf("Name() = %q", got)
	}
	e.Run()
}
