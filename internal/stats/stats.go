// Package stats provides the descriptive statistics used by the IMPRESS
// evaluation: medians and standard deviations for the figure error bars,
// net-delta computations for Table I, bootstrap confidence intervals, and
// the rank correlations used to validate the MPNN/AlphaFold simulators
// against each other.
package stats

import (
	"math"
	"sort"

	"impress/internal/xrand"
)

// Sum returns the sum of xs (0 for empty input).
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean. It returns NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Median returns the middle value (average of the two middle values for
// even-length input). It returns NaN for empty input and does not modify
// xs.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics (type-7, the R/NumPy default). It returns NaN
// for empty input and does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Variance returns the unbiased sample variance (n-1 denominator). It
// returns NaN for fewer than two samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum (NaN for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary holds the descriptive statistics reported in the figures: the
// bars show medians, the error bars show half a standard deviation.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
}

// Describe computes a Summary of xs.
func Describe(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) over a set of
// per-tenant allocation metrics: 1 when every tenant gets an identical
// share, approaching 1/n as one tenant takes everything. It returns NaN
// for empty input and 1 for a single sample or an all-zero set (nothing
// was allocated unevenly).
func JainIndex(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// NetDelta returns final - initial, the paper's "Net Δ" metric for Table I
// (e.g. pLDDT Net Δ = median pLDDT after the last cycle minus median pLDDT
// of the starting designs).
func NetDelta(initial, final float64) float64 {
	return final - initial
}

// PercentImprovement returns the relative improvement of b over a in
// percent, as used for the parenthesised values in Table I. For metrics
// where lower is better, negate the inputs before calling.
func PercentImprovement(a, b float64) float64 {
	if a == 0 {
		return math.NaN()
	}
	return (b - a) / math.Abs(a) * 100
}

// BootstrapMedianCI returns a percentile bootstrap confidence interval for
// the median of xs at the given confidence level (e.g. 0.95), using resamples
// drawn from the deterministic generator seeded with seed.
func BootstrapMedianCI(xs []float64, level float64, resamples int, seed uint64) (lo, hi float64) {
	if len(xs) == 0 || resamples <= 0 {
		return math.NaN(), math.NaN()
	}
	rng := xrand.New(seed)
	meds := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for i := 0; i < resamples; i++ {
		for j := range buf {
			buf[j] = xs[rng.Intn(len(xs))]
		}
		meds[i] = Median(buf)
	}
	alpha := (1 - level) / 2
	return Quantile(meds, alpha), Quantile(meds, 1-alpha)
}

// Pearson returns the Pearson correlation coefficient of paired samples.
// It returns NaN if fewer than two pairs or if either side has zero
// variance. Inputs must have equal length.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of paired samples,
// handling ties by mid-ranking.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Spearman length mismatch")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based mid-ranks of xs (ties share the average of the
// ranks they span).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Histogram bins xs into nbins equal-width bins over [min, max] and
// returns the bin counts plus the bin edges (nbins+1 values). Values equal
// to max land in the last bin.
func Histogram(xs []float64, nbins int) (counts []int, edges []float64) {
	if nbins <= 0 {
		panic("stats: non-positive bin count")
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	if len(xs) == 0 {
		return counts, edges
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1
	}
	w := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, edges
}
