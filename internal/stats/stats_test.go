package stats

import (
	"math"
	"testing"
	"testing/quick"

	"impress/internal/xrand"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanMedianKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if m := Median(xs); !almost(m, 4.5, 1e-12) {
		t.Errorf("Median = %v, want 4.5", m)
	}
	if m := Median([]float64{3, 1, 2}); !almost(m, 2, 1e-12) {
		t.Errorf("odd Median = %v, want 2", m)
	}
}

func TestStdDevKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample stddev with n-1 denominator: sqrt(32/7).
	if s := StdDev(xs); !almost(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	for name, v := range map[string]float64{
		"Mean":     Mean(nil),
		"Median":   Median(nil),
		"Min":      Min(nil),
		"Max":      Max(nil),
		"Variance": Variance([]float64{1}),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s(empty) = %v, want NaN", name, v)
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Clamped out-of-range q.
	if got := Quantile(xs, -1); got != 1 {
		t.Errorf("Quantile(-1) = %v", got)
	}
	if got := Quantile(xs, 2); got != 5 {
		t.Errorf("Quantile(2) = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMedianProperties(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		rng := xrand.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		med := Median(xs)
		if med < Min(xs)-1e-9 || med > Max(xs)+1e-9 {
			return false
		}
		// Invariance under permutation.
		perm := rng.Perm(n)
		ys := make([]float64, n)
		for i, p := range perm {
			ys[i] = xs[p]
		}
		if !almost(Median(ys), med, 1e-9) {
			return false
		}
		// Shift equivariance: median(xs + c) = median(xs) + c.
		for i := range ys {
			ys[i] = xs[i] + 7.5
		}
		return almost(Median(ys), med+7.5, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		rng := xrand.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Range(-100, 100)
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	d := Describe([]float64{1, 2, 3, 4})
	if d.N != 4 || d.Mean != 2.5 || d.Median != 2.5 || d.Min != 1 || d.Max != 4 {
		t.Fatalf("Describe = %+v", d)
	}
}

func TestNetDeltaAndPercent(t *testing.T) {
	if NetDelta(80, 87.7) != 7.699999999999989 && !almost(NetDelta(80, 87.7), 7.7, 1e-9) {
		t.Errorf("NetDelta = %v", NetDelta(80, 87.7))
	}
	// Table I: IM-RP pLDDT Net Δ 7.7 vs CONT-V 5.8 → +32.8%.
	if p := PercentImprovement(5.8, 7.7); !almost(p, 32.758, 0.01) {
		t.Errorf("PercentImprovement = %v, want ~32.76", p)
	}
	if !math.IsNaN(PercentImprovement(0, 1)) {
		t.Error("PercentImprovement(0, ·) should be NaN")
	}
}

func TestBootstrapMedianCI(t *testing.T) {
	rng := xrand.New(17)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 50 + rng.NormFloat64()*5
	}
	lo, hi := BootstrapMedianCI(xs, 0.95, 500, 1)
	if !(lo < hi) {
		t.Fatalf("CI degenerate: [%v, %v]", lo, hi)
	}
	med := Median(xs)
	if med < lo || med > hi {
		t.Fatalf("sample median %v outside CI [%v, %v]", med, lo, hi)
	}
	if hi-lo > 3 {
		t.Fatalf("CI implausibly wide: [%v, %v]", lo, hi)
	}
	// Deterministic under same seed.
	lo2, hi2 := BootstrapMedianCI(xs, 0.95, 500, 1)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic for fixed seed")
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almost(r, 1, 1e-12) {
		t.Errorf("perfect positive Pearson = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almost(r, -1, 1e-12) {
		t.Errorf("perfect negative Pearson = %v", r)
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Error("zero-variance Pearson should be NaN")
	}
}

func TestPearsonMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform gives Spearman exactly 1.
	xs := []float64{1, 5, 2, 8, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	if r := Spearman(xs, ys); !almost(r, 1, 1e-12) {
		t.Errorf("Spearman of monotone transform = %v, want 1", r)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almost(r[i], want[i], 1e-12) {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 2)
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	if counts[0]+counts[1] != 5 {
		t.Fatalf("counts = %v, want total 5", counts)
	}
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts = %v, want [2 3]", counts)
	}
	// Degenerate all-equal input must not divide by zero.
	c2, _ := Histogram([]float64{3, 3, 3}, 4)
	total := 0
	for _, c := range c2 {
		total += c
	}
	if total != 3 {
		t.Fatalf("degenerate histogram lost values: %v", c2)
	}
}

func TestHistogramPanicsOnBadBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nbins=0")
		}
	}()
	Histogram([]float64{1}, 0)
}

func TestSumEmptyAndKnown(t *testing.T) {
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
	if Sum([]float64{1.5, 2.5}) != 4 {
		t.Error("Sum wrong")
	}
}

func BenchmarkMedian1000(b *testing.B) {
	rng := xrand.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Median(xs)
	}
}

func BenchmarkSpearman1000(b *testing.B) {
	rng := xrand.New(1)
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Spearman(xs, ys)
	}
}

func TestJainIndex(t *testing.T) {
	if !math.IsNaN(JainIndex(nil)) {
		t.Fatal("empty input must be NaN")
	}
	if JainIndex([]float64{3.7}) != 1 {
		t.Fatal("single sample must be perfectly fair")
	}
	if JainIndex([]float64{0, 0, 0}) != 1 {
		t.Fatal("all-zero set must be perfectly fair")
	}
	if JainIndex([]float64{2, 2, 2, 2}) != 1 {
		t.Fatal("equal shares must score 1")
	}
	// One tenant takes everything: J = 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); !almost(got, 0.25, 1e-12) {
		t.Fatalf("monopolized shares scored %v, want 0.25", got)
	}
	// Textbook example: (1+2+3)² / (3·(1+4+9)) = 36/42.
	if got := JainIndex([]float64{1, 2, 3}); !almost(got, 36.0/42.0, 1e-12) {
		t.Fatalf("JainIndex([1 2 3]) = %v, want %v", got, 36.0/42.0)
	}
	// Scale invariance and the (1/n, 1] range, property-checked.
	rng := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		xs := make([]float64, n)
		scaled := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			scaled[i] = xs[i] * 7.5
		}
		j := JainIndex(xs)
		if j < 1/float64(n)-1e-9 || j > 1+1e-9 {
			t.Fatalf("JainIndex(%v) = %v outside (1/n, 1]", xs, j)
		}
		if !almost(j, JainIndex(scaled), 1e-9) {
			t.Fatalf("JainIndex not scale-invariant: %v vs %v", j, JainIndex(scaled))
		}
	}
}
