package impress_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"impress"
)

func smallCampaign(t *testing.T, seed uint64) *impress.Result {
	t.Helper()
	target, err := impress.NewTarget(seed, "IOTEST", 50, impress.AlphaSynucleinTail4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := impress.AdaptiveConfig(seed)
	cfg.Pipeline.Cycles = 2
	cfg.Pipeline.MPNN.NumSequences = 5
	cfg.Pipeline.MPNN.Sweeps = 2
	res, err := impress.RunAdaptive([]*impress.Target{target}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPublicJSONRoundTrip(t *testing.T) {
	res := smallCampaign(t, 31)
	var buf bytes.Buffer
	if err := impress.WriteResultJSON(&buf, res, false); err != nil {
		t.Fatal(err)
	}
	loaded, err := impress.ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Approach != res.Approach || loaded.TrajectoryCount() != res.TrajectoryCount() {
		t.Fatal("round trip lost data")
	}
}

func TestPublicPDBFromCampaign(t *testing.T) {
	res := smallCampaign(t, 32)
	st := res.FinalDesigns["IOTEST"]
	if st == nil {
		t.Fatal("no final design")
	}
	var buf bytes.Buffer
	if err := impress.WritePDB(&buf, st, nil); err != nil {
		t.Fatal(err)
	}
	parsed, _, err := impress.ParsePDB(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Receptor.Seq.Equal(st.Receptor.Seq) {
		t.Fatal("design sequence lost in PDB round trip")
	}
}

func TestPublicEventStream(t *testing.T) {
	target, err := impress.NewTarget(33, "EVT", 48, impress.AlphaSynucleinTail4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := impress.AdaptiveConfig(33)
	cfg.Pipeline.Cycles = 2
	cfg.Pipeline.MPNN.NumSequences = 4
	cfg.Pipeline.MPNN.Sweeps = 2
	coord, err := impress.NewCoordinator([]*impress.Target{target}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := coord.Events(256)

	// Consume live from a goroutine while the campaign runs — the
	// concurrent-consumption mode the queue package exists for.
	collected := make(chan int, 1)
	go func() {
		n := 0
		for {
			if _, ok := stream.Queue().Get(); !ok {
				break
			}
			n++
		}
		collected <- n
	}()
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	n := <-collected
	if n < res.TrajectoryCount()+2 {
		t.Fatalf("live consumer saw %d events", n)
	}
}

func TestPublicRenderers(t *testing.T) {
	res := smallCampaign(t, 34)
	if !strings.Contains(impress.Gantt(res, 5), "Task timeline") {
		t.Error("Gantt broken")
	}
	if !strings.Contains(impress.UtilizationFigure("U", res), "Busy CPU cores") {
		t.Error("UtilizationFigure broken")
	}
	if !strings.Contains(impress.IterationFigure("I", 2, res), "pLDDT") {
		t.Error("IterationFigure broken")
	}
	ctrl := smallCampaign(t, 35)
	ctrl.Approach = "CONT-V" // label for rendering
	if !strings.Contains(impress.TableI(ctrl, res), "Trajectories") {
		t.Error("TableI broken")
	}
}

// TestWriteDesignPDBsDeterministicOrder pins the -pdb satellite fix:
// FinalDesigns is a map, and the files (and "wrote …" lines derived
// from the returned paths) must come out in sorted target order, not in
// Go's randomized map iteration order.
func TestWriteDesignPDBsDeterministicOrder(t *testing.T) {
	res := smallCampaign(t, 36)
	st := res.FinalDesigns["IOTEST"]
	if st == nil {
		t.Fatal("no final design")
	}
	// Several targets, inserted in non-sorted order: map iteration order
	// would differ between processes (and often between runs).
	res.FinalDesigns = map[string]*impress.Structure{
		"ZETA": st, "ALPHA": st, "MID": st, "BETA": st,
	}
	want := []string{"ALPHA.pdb", "BETA.pdb", "MID.pdb", "ZETA.pdb"}
	for trial := 0; trial < 3; trial++ {
		dir := t.TempDir()
		paths, err := impress.WriteDesignPDBs(dir, res)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != len(want) {
			t.Fatalf("wrote %d files, want %d", len(paths), len(want))
		}
		for i, p := range paths {
			if filepath.Base(p) != want[i] {
				t.Fatalf("trial %d: path %d is %s, want %s", trial, i, filepath.Base(p), want[i])
			}
			if _, err := os.Stat(p); err != nil {
				t.Fatalf("reported path not written: %v", err)
			}
		}
	}
}

// TestWriteDesignPDBsErrorPath: an unwritable destination surfaces an
// error (the command turns it into a non-zero exit) instead of quietly
// dropping designs.
func TestWriteDesignPDBsErrorPath(t *testing.T) {
	res := smallCampaign(t, 37)
	// A regular file where the directory should go: MkdirAll must fail.
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := impress.WriteDesignPDBs(filepath.Join(blocker, "pdbs"), res); err == nil {
		t.Fatal("writing into a blocked path succeeded")
	}
}
