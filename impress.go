// Package impress is the public API of the IMPRESS reproduction: adaptive
// protein design protocols (IM-RP) and their supporting middleware, per
// "Adaptive Protein Design Protocols and Middleware" (IPPS 2025).
//
// The package couples a ProteinMPNN-style sequence generator and an
// AlphaFold-style structure predictor through an adaptive pipelines
// coordinator executing on a RADICAL-Pilot-style runtime over a simulated
// HPC resource. Campaigns replay deterministically in virtual time, so
// the paper's evaluation (Table I, Figures 2–5) regenerates in seconds.
//
// Quick start:
//
//	targets, _ := impress.NamedPDZTargets(42)
//	result, _ := impress.RunAdaptive(targets, impress.AdaptiveConfig(42))
//	fmt.Println(impress.Summary(result))
//
// See the examples directory for complete programs, and the Experiments
// function for the paper's evaluation harness.
package impress

import (
	"io"

	"impress/internal/campaign"
	"impress/internal/cluster"
	"impress/internal/core"
	"impress/internal/costmodel"
	"impress/internal/fault"
	"impress/internal/fold"
	"impress/internal/ga"
	"impress/internal/landscape"
	"impress/internal/mpnn"
	"impress/internal/pipeline"
	"impress/internal/report"
	"impress/internal/fleet"
	"impress/internal/sched"
	"impress/internal/steer"
	"impress/internal/telemetry"
	"impress/internal/tenancy"
	"impress/internal/workload"
)

// Core domain types, aliased from the implementation packages so library
// users work with one import path.
type (
	// Target is one design problem: a starting receptor–peptide complex
	// plus its hidden fitness landscape.
	Target = workload.Target
	// WorkloadConfig tunes synthetic target generation.
	WorkloadConfig = workload.Config
	// Metrics are AlphaFold confidence/error measures (pLDDT, pTM,
	// inter-chain pAE).
	Metrics = landscape.Metrics
	// Result is a completed campaign's full record.
	Result = core.Result
	// Config describes a campaign (protocol parameters, machine,
	// sub-pipeline policy, concurrency).
	Config = core.Config
	// SubPolicy governs dynamic sub-pipeline generation.
	SubPolicy = core.SubPolicy
	// PipelineParams configures the per-pipeline protocol (cycles,
	// retries, selection policy, fold task splitting).
	PipelineParams = pipeline.Params
	// Trajectory is one concluded design cycle.
	Trajectory = pipeline.Trajectory
	// MPNNConfig configures the sequence-generation stage.
	MPNNConfig = mpnn.Config
	// FoldConfig configures the structure-prediction stage.
	FoldConfig = fold.Config
	// CostParams holds the calibrated task duration/resource models.
	CostParams = costmodel.Params
	// MachineSpec describes the HPC resource.
	MachineSpec = cluster.Spec
	// SelectionPolicy orders candidate sequences for evaluation.
	SelectionPolicy = ga.SelectionPolicy
	// PilotSpec declares one pilot partition of a multi-pilot campaign.
	PilotSpec = core.PilotSpec
	// ResourceClass buckets tasks by hardware (CPU vs GPU) for placement.
	ResourceClass = core.ResourceClass
	// Campaign is one unit of work for the campaign engine.
	Campaign = campaign.Campaign
	// CampaignOutcome is one campaign's result or failure.
	CampaignOutcome = campaign.Outcome
	// CampaignEngine executes campaigns on a bounded worker pool.
	CampaignEngine = campaign.Engine
	// Scenario declares a family of campaigns as data.
	Scenario = campaign.Scenario
	// ScenarioParams parameterizes scenario construction.
	ScenarioParams = campaign.Params
	// FaultSpec declares a campaign's failure models (per-task faults,
	// node MTBF crashes, walltime expiry, correlated domain failures);
	// the zero value injects nothing. Assign to Config.Fault or
	// ScenarioParams.Fault.
	FaultSpec = fault.Spec
	// DomainSpec declares the correlated failure-domain models
	// (FaultSpec.Domains): whole-domain outages, same-domain crash
	// cascades, and scheduled maintenance windows.
	DomainSpec = fault.DomainSpec
	// Maintenance is one scheduled maintenance window over a failure
	// domain (DomainSpec.Maintenance; parse flag syntax with
	// ParseMaintenance).
	Maintenance = fault.Maintenance
	// FaultStats is a campaign's fault-injection and recovery record
	// (Result.Faults; nil without failure models).
	FaultStats = core.FaultStats
	// CriticalPath is the makespan critical-path analysis of a campaign
	// (Result.CriticalPath): the attempt chain whose gap + wait + setup +
	// run sums to the makespan, plus per-stage slack.
	CriticalPath = telemetry.CriticalPath
	// TelemetryData is a campaign's observability record
	// (Result.Telemetry; nil unless Config.Telemetry was set).
	TelemetryData = telemetry.Data
	// TenancySpec declares a multi-tenant service: many campaigns
	// arriving on one shared cluster under admission control. Assign to
	// Campaign.Tenancy or run directly with NewTenancyService.
	TenancySpec = tenancy.Spec
	// TenancyConfig is the service-level half of a TenancySpec (shared
	// pool, arrival process, admission and reclaim policies).
	TenancyConfig = tenancy.Config
	// TenantSpec declares one arriving tenant campaign of a
	// multi-tenant service.
	TenantSpec = tenancy.TenantSpec
	// TenancyService executes one multi-tenant service spec.
	TenancyService = tenancy.Service
	// TenantStat is one tenant's admission and fairness record in a
	// service result (Result.Tenants).
	TenantStat = core.TenantStat
)

// Resource classes for PilotSpec.Serves.
const (
	ClassCPU = core.ClassCPU
	ClassGPU = core.ClassGPU
)

// Selection policies for PipelineParams.Selection.
const (
	// SelectBestLogLikelihood tries candidates in MPNN log-likelihood
	// order (IM-RP).
	SelectBestLogLikelihood = ga.SelectBestLogLikelihood
	// SelectRandom picks candidates in random order (CONT-V).
	SelectRandom = ga.SelectRandom
	// SelectOracle ranks by true landscape quality (ablation upper
	// bound).
	SelectOracle = ga.SelectOracle
)

// α-synuclein C-terminal peptides, the paper's design targets.
const (
	AlphaSynucleinTail10 = workload.AlphaSynucleinTail10
	AlphaSynucleinTail4  = workload.AlphaSynucleinTail4
)

// Metric extractors for Result.IterationSummary / NetDelta.
var (
	PLDDT = core.PLDDTOf
	PTM   = core.PTMOf
	IPAE  = core.IPAEOf
)

// Amarel returns the paper's evaluation resource: one node with 28 CPU
// cores, 4 GPUs, and 128 GB of memory.
func Amarel() MachineSpec { return cluster.AmarelNode() }

// AmarelCluster returns n Amarel nodes as one partition — the multi-node
// machine elastic steering campaigns run on (split it with SplitPilots
// and set Config.Steer).
func AmarelCluster(n int) MachineSpec { return cluster.AmarelCluster(n) }

// DefaultWorkloadConfig returns the standard target-synthesis settings.
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// NamedPDZTargets builds the paper's four PDZ domains (NHERF3, HTRA1,
// SCRIB, SHANK1) in complex with the α-synuclein 10-mer.
func NamedPDZTargets(seed uint64) ([]*Target, error) {
	return workload.NamedTargets(seed, workload.DefaultConfig())
}

// PDZScreen builds the expanded workload of n synthetic PDB-mined
// PDZ–peptide complexes bound to the α-synuclein 4-mer (the paper uses
// n=70).
func PDZScreen(seed uint64, n int) ([]*Target, error) {
	return workload.MinedScreen(seed, n, workload.DefaultConfig())
}

// NewTarget synthesizes a custom design problem.
func NewTarget(seed uint64, name string, receptorLen int, peptide string) (*Target, error) {
	return workload.NewTarget(seed, name, receptorLen, peptide, workload.DefaultConfig())
}

// ProteaseTarget builds a monomeric protease-like target for the paper's
// future-work protocol, returning the catalytic triad positions that the
// MPNN stage must hold fixed.
func ProteaseTarget(seed uint64, name string, receptorLen int) (*Target, []int, error) {
	return workload.ProteaseTarget(seed, name, receptorLen, workload.DefaultConfig())
}

// AdaptiveConfig returns the IM-RP campaign configuration on the Amarel
// node: adaptive selection and pruning, split AlphaFold tasks,
// asynchronous pipeline execution, dynamic sub-pipelines.
func AdaptiveConfig(seed uint64) Config { return core.AdaptiveConfig(seed) }

// ControlConfig returns the CONT-V baseline configuration: the same
// stages, random selection, no comparisons or pruning, monolithic
// AlphaFold tasks, strictly sequential execution.
func ControlConfig(seed uint64) Config { return core.ControlConfig(seed) }

// IMRPParams returns the adaptive per-pipeline protocol parameters.
func IMRPParams() PipelineParams { return pipeline.IMRPParams() }

// ControlParams returns the CONT-V per-pipeline protocol parameters.
func ControlParams() PipelineParams { return pipeline.ControlParams() }

// SplitPilots partitions a machine into the heterogeneous CPU/GPU pilot
// pair (the paper's ParaFold-style placement): CPU-class stages run on a
// dedicated CPU pilot while sampling and inference get their own GPU
// pilot. Assign the result to Config.Pilots.
func SplitPilots(machine MachineSpec) ([]PilotSpec, error) {
	return core.SplitPilots(machine)
}

// FleetPilots generates a seed-deterministic heterogeneous fleet from a
// node-template spec (e.g. "cpu:28c0g128m*900+gpu:8c4g32m*100") and
// splits it into a CPU pilot and a GPU pilot with explicit per-node
// capacities. Assign the result to Config.Pilots.
func FleetPilots(spec string, seed uint64) ([]PilotSpec, error) {
	return campaign.FleetPilots(spec, seed)
}

// RunAdaptive executes an IM-RP campaign over targets.
func RunAdaptive(targets []*Target, cfg Config) (*Result, error) {
	return core.RunAdaptive(targets, cfg)
}

// RunControl executes a CONT-V campaign over targets.
func RunControl(targets []*Target, cfg Config) (*Result, error) {
	return core.RunControl(targets, cfg)
}

// NewCampaignEngine creates a campaign engine with the given concurrency;
// workers <= 0 uses GOMAXPROCS.
func NewCampaignEngine(workers int) *CampaignEngine {
	return campaign.NewEngine(workers)
}

// RunCampaigns executes campaigns on a bounded worker pool and returns
// outcomes in input order. Campaigns are hermetically seeded, so outcomes
// are bit-identical regardless of worker count; per-campaign failures
// never discard the rest of a batch.
func RunCampaigns(campaigns []Campaign, workers int) []CampaignOutcome {
	return campaign.Run(campaigns, workers)
}

// Scenarios returns the registered campaign scenarios (sorted by name):
// the declarative workload catalogue, including the paper's pair, sweep,
// screen, and stress workloads.
func Scenarios() []Scenario { return campaign.Scenarios() }

// BuildScenario constructs the campaigns of a named scenario.
func BuildScenario(name string, p ScenarioParams) ([]Campaign, error) {
	return campaign.Build(name, p)
}

// LookupScenario returns a registered scenario by name.
func LookupScenario(name string) (Scenario, bool) { return campaign.Lookup(name) }

// RegisterScenario adds a new workload family to the scenario registry.
func RegisterScenario(s Scenario) error { return campaign.Register(s) }

// Summary renders a one-paragraph textual summary of a campaign result.
func Summary(r *Result) string { return report.Summary(r) }

// SchedulingPolicies returns the registered pilot-agent scheduling policy
// names (sorted): the values accepted by Config.Policy, PilotSpec.Policy,
// and the cmds' -policy flag.
func SchedulingPolicies() []string { return sched.Names() }

// ValidatePolicy checks a scheduling-policy name; the empty string is
// valid (it derives the classic behaviour from Config.Backfill).
func ValidatePolicy(name string) error { return sched.Validate(name) }

// PolicyCompare renders the scheduling-policy comparison table over
// campaign results grouped by their resolved policy — the report behind
// the policy-compare scenario.
func PolicyCompare(results []*Result) string { return report.PolicyCompare(results) }

// PolicyCompareCSV writes one policy-comparison CSV row per result.
func PolicyCompareCSV(w io.Writer, results []*Result) error {
	return report.PolicyCompareCSV(w, results)
}

// RecoveryPolicies returns the registered fault-recovery policy names
// (sorted): the values accepted by Config.Recovery, PilotSpec.Recovery,
// and the cmds' -recovery flag.
func RecoveryPolicies() []string { return fault.Names() }

// ValidateRecovery checks a fault-recovery policy name; the empty string
// is valid and means "none" (failures surface).
func ValidateRecovery(name string) error { return fault.Validate(name) }

// ParseMaintenance parses a scheduled-maintenance description of the
// form "rackA@6h/30m/24h,rackB@12h/1h" — comma-separated
// domain@start/duration[/every] windows — into DomainSpec.Maintenance
// entries. An empty string yields nil windows.
func ParseMaintenance(s string) ([]Maintenance, error) { return fault.ParseMaintenance(s) }

// SteeringPolicies returns the registered elastic-steering policy names
// (sorted): the values accepted by Config.Steer, PilotSpec.Steer,
// ScenarioParams.Steer, and the cmds' -steer flag.
func SteeringPolicies() []string { return steer.Names() }

// ValidateSteer checks an elastic-steering policy name; the empty string
// is valid and means "none" (pilot partitions stay frozen).
func ValidateSteer(name string) error { return steer.Validate(name) }

// SteerEnabled reports whether a steering-policy name actually steers —
// false for "" and "none", the frozen defaults.
func SteerEnabled(name string) bool { return steer.Enabled(name) }

// Elastic renders the steering comparison table over campaign results
// grouped by their steering policy, against the frozen split — the
// report behind the elastic-screen scenario.
func Elastic(results []*Result) string { return report.Elastic(results) }

// ElasticCSV writes one steering-comparison CSV row per result.
func ElasticCSV(w io.Writer, results []*Result) error {
	return report.ElasticCSV(w, results)
}

// Resilience renders the fault-sweep comparison table over campaign
// results grouped by (recovery policy, failure rate), against their
// fault-free baselines — the report behind the fault-sweep scenario.
func Resilience(results []*Result) string { return report.Resilience(results) }

// ResilienceCSV writes one resilience CSV row per result.
func ResilienceCSV(w io.Writer, results []*Result) error {
	return report.ResilienceCSV(w, results)
}

// Chaos renders the correlated-failure comparison table over campaign
// results grouped by (recovery policy, steering policy), against their
// fault-free baselines — the report behind the chaos-sweep scenario.
func Chaos(results []*Result) string { return report.Chaos(results) }

// ChaosCSV writes one chaos CSV row per result.
func ChaosCSV(w io.Writer, results []*Result) error {
	return report.ChaosCSV(w, results)
}

// Preemption renders the checkpointed-preemption comparison table over
// campaign results grouped by (checkpoint interval, kill-vs-drain,
// steering policy), against their fault-free baselines — the report
// behind the preempt-sweep scenario.
func Preemption(results []*Result) string { return report.Preemption(results) }

// PreemptionCSV writes one preemption CSV row per result.
func PreemptionCSV(w io.Writer, results []*Result) error {
	return report.PreemptionCSV(w, results)
}

// NewTenancyService validates a multi-tenant service spec and prepares
// it to run: a shared concurrent-safe cluster leased to a deterministic
// stream of arriving tenant campaigns under admission control, with
// fairness-aware inter-campaign steering reclaiming nodes between them.
// Campaigns with Campaign.Tenancy set run through the same service on
// the campaign engine; use this direct form to reach the per-tenant
// results and event streams.
func NewTenancyService(spec TenancySpec) (*TenancyService, error) {
	return tenancy.NewService(spec)
}

// AdmissionPolicies returns the registered admission-control policy
// names (sorted): the values accepted by TenancyConfig.Admission,
// ScenarioParams.Admission, and the cmds' -admit flag.
func AdmissionPolicies() []string { return tenancy.Names() }

// ValidateAdmission checks an admission-control policy name; the empty
// string is valid and means the default (fcfs-admit).
func ValidateAdmission(name string) error {
	if name == "" {
		return nil
	}
	return tenancy.Validate(name)
}

// ArrivalKinds returns the supported tenant arrival-process names
// (sorted): the values accepted by TenancyConfig.Arrival,
// ScenarioParams.Arrival, and the cmds' -arrival flag.
func ArrivalKinds() []string { return fleet.ArrivalKinds() }

// TenantSteeringPolicies returns the registered inter-campaign steering
// policy names (sorted): the values accepted by TenancyConfig.Reclaim,
// ScenarioParams.Reclaim, and the cmds' -reclaim flag.
func TenantSteeringPolicies() []string { return steer.TenantNames() }

// ValidateTenantSteer checks an inter-campaign steering policy name;
// the empty string is valid (the scenario default applies) and "none"
// freezes every admission grant for life.
func ValidateTenantSteer(name string) error { return steer.ValidateTenant(name) }

// JainOf returns Jain's fairness index over a service result's
// per-tenant slowdowns: 1 when the shared cluster stretched every
// tenant equally, approaching 1/n when admission control sacrificed
// some tenants to others.
func JainOf(r *Result) float64 { return report.JainOf(r) }

// Fairness renders the multi-tenant admission comparison table over
// service results grouped by admission policy — the report behind the
// tenant-sweep scenario.
func Fairness(results []*Result) string { return report.Fairness(results) }

// FairnessCSV writes one fairness CSV row per tenant per service run.
func FairnessCSV(w io.Writer, results []*Result) error {
	return report.FairnessCSV(w, results)
}

// CriticalPathReport renders a campaign's critical path — the segment
// chain accounting for the whole makespan — and its per-stage slack
// table.
func CriticalPathReport(r *Result) string { return report.CriticalPath(r) }

// CriticalPathCSV writes one CSV row per critical-path segment for each
// result.
func CriticalPathCSV(w io.Writer, results []*Result) error {
	return report.CriticalPathCSV(w, results)
}

// StageSlackCSV writes the per-stage slack rows of each result's
// critical-path analysis.
func StageSlackCSV(w io.Writer, results []*Result) error {
	return report.StageSlackCSV(w, results)
}

// WriteChromeTrace writes the results' timelines in Chrome Trace Event
// Format (view in Perfetto or chrome://tracing): task spans and per-node
// run slices per pilot, queue-depth and gauge counters, and instant
// markers for faults, transfers, and steering decisions. labels names
// each result's campaign; a nil labels falls back to each result's
// approach.
func WriteChromeTrace(w io.Writer, results []*Result, labels []string) error {
	cts := make([]telemetry.CampaignTrace, 0, len(results))
	for i, r := range results {
		if r == nil {
			continue
		}
		label := r.Approach
		if i < len(labels) {
			label = labels[i]
		}
		cts = append(cts, r.CampaignTrace(label))
	}
	return telemetry.WriteChromeTrace(w, cts)
}

// ValidateChromeTrace checks that data parses as Chrome Trace Event
// Format with balanced, properly nested spans — the validation CI runs
// on every emitted trace.
func ValidateChromeTrace(data []byte) error { return telemetry.ValidateChromeTrace(data) }
