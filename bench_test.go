// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations over the design choices DESIGN.md calls out.
//
// Each benchmark runs complete campaigns and reports the scientific
// quantities alongside wall time:
//
//	cpu%          average busy-core fraction of the simulated node
//	gpu%          average busy-GPU fraction
//	traj          design trajectories examined
//	task-hours    aggregate task execution time (the paper's "Time (h)")
//	makespan-h    campaign wall-clock span in virtual hours
//	dplddt        net pLDDT improvement (final − starting median)
//
// Regenerate everything: go test -bench=. -benchmem
package impress_test

import (
	"fmt"
	"testing"
	"time"

	"impress"
	"impress/internal/cluster"
	"impress/internal/fleet"
	"impress/internal/workload"
	"impress/internal/xrand"
)

// reportCampaign attaches the scientific metrics of a result to b.
func reportCampaign(b *testing.B, res *impress.Result) {
	b.Helper()
	b.ReportMetric(res.CPUUtilization*100, "cpu%")
	b.ReportMetric(res.GPUUtilization*100, "gpu%")
	b.ReportMetric(float64(res.TrajectoryCount()), "traj")
	b.ReportMetric(res.AggregateTaskTime.Hours(), "task-hours")
	b.ReportMetric(res.Makespan.Hours(), "makespan-h")
	b.ReportMetric(res.NetDelta(impress.PLDDT), "dplddt")
}

func namedTargets(b *testing.B, seed uint64) []*impress.Target {
	b.Helper()
	targets, err := impress.NamedPDZTargets(seed)
	if err != nil {
		b.Fatal(err)
	}
	return targets
}

// BenchmarkTableI_CONTV regenerates the CONT-V row of Table I: one
// sequential, non-adaptive campaign over the four named PDZ domains.
func BenchmarkTableI_CONTV(b *testing.B) {
	targets := namedTargets(b, 42)
	var res *impress.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = impress.RunControl(targets, impress.ControlConfig(42))
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCampaign(b, res)
}

// BenchmarkTableI_IMRP regenerates the IM-RP row of Table I: the adaptive
// campaign with asynchronous execution and dynamic sub-pipelines.
func BenchmarkTableI_IMRP(b *testing.B) {
	targets := namedTargets(b, 42)
	var res *impress.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = impress.RunAdaptive(targets, impress.AdaptiveConfig(42))
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCampaign(b, res)
}

// BenchmarkFig2 regenerates Figure 2: the CONT-V vs IM-RP per-iteration
// metric comparison over the four PDZ-peptide structures.
func BenchmarkFig2(b *testing.B) {
	var out *impress.ExperimentOutput
	for i := 0; i < b.N; i++ {
		var err error
		out, err = impress.Fig2Experiment(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCampaign(b, out.Results["IM-RP"])
}

// BenchmarkFig3 regenerates Figure 3: the expanded IM-RP workflow over 70
// PDB-mined complexes with adaptivity disabled in the final cycle.
func BenchmarkFig3(b *testing.B) {
	var out *impress.ExperimentOutput
	for i := 0; i < b.N; i++ {
		var err error
		out, err = impress.Fig3Experiment(44, 70)
		if err != nil {
			b.Fatal(err)
		}
	}
	res := out.Results["IM-RP"]
	reportCampaign(b, res)
	b.ReportMetric(float64(res.SubPipelines), "sub-pl")
	it3, _ := res.IterationSummary(3, impress.PLDDT)
	it4, _ := res.IterationSummary(4, impress.PLDDT)
	b.ReportMetric(it4-it3, "final-drop")
}

// BenchmarkFig4 regenerates Figure 4: CONT-V's CPU/GPU utilization trace.
func BenchmarkFig4(b *testing.B) {
	var out *impress.ExperimentOutput
	for i := 0; i < b.N; i++ {
		var err error
		out, err = impress.Fig4Experiment(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCampaign(b, out.Results["CONT-V"])
}

// BenchmarkFig5 regenerates Figure 5: IM-RP's CPU/GPU utilization trace
// and runtime phase breakdown.
func BenchmarkFig5(b *testing.B) {
	var out *impress.ExperimentOutput
	for i := 0; i < b.N; i++ {
		var err error
		out, err = impress.Fig5Experiment(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCampaign(b, out.Results["IM-RP"])
}

// BenchmarkAblationRetryDepth varies Stage 6's alternate-sequence budget:
// 0 disables retries entirely; the paper uses 10.
func BenchmarkAblationRetryDepth(b *testing.B) {
	for _, depth := range []int{0, 1, 5, 10} {
		b.Run(fmt.Sprintf("retries=%d", depth), func(b *testing.B) {
			targets := namedTargets(b, 42)
			cfg := impress.AdaptiveConfig(42)
			cfg.Pipeline.MaxRetries = depth
			var res *impress.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = impress.RunAdaptive(targets, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCampaign(b, res)
			b.ReportMetric(float64(res.EarlyTerminated), "terminated")
		})
	}
}

// BenchmarkAblationSubPipelines isolates the contribution of dynamic
// sub-pipeline generation to utilization and quality.
func BenchmarkAblationSubPipelines(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "off"
		if enabled {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			targets := namedTargets(b, 42)
			cfg := impress.AdaptiveConfig(42)
			cfg.Sub.Enabled = enabled
			var res *impress.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = impress.RunAdaptive(targets, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCampaign(b, res)
			b.ReportMetric(float64(res.SubPipelines), "sub-pl")
		})
	}
}

// BenchmarkAblationSplitFold compares the ParaFold-style CPU/GPU task
// split against the monolithic AlphaFold task, and the MSA reuse option —
// the mechanisms behind the Fig. 4 vs Fig. 5 utilization contrast.
func BenchmarkAblationSplitFold(b *testing.B) {
	cases := []struct {
		name            string
		split, reuseMSA bool
	}{
		{"monolithic", false, false},
		{"split", true, false},
		{"split-reuse-msa", true, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			targets := namedTargets(b, 42)
			cfg := impress.AdaptiveConfig(42)
			cfg.Pipeline.SplitFold = c.split
			cfg.Pipeline.ReuseMSA = c.reuseMSA
			var res *impress.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = impress.RunAdaptive(targets, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCampaign(b, res)
		})
	}
}

// BenchmarkAblationSelection compares candidate selection policies: the
// GA's log-likelihood ranking, CONT-V's random pick, and the oracle upper
// bound that reads the hidden landscape directly.
func BenchmarkAblationSelection(b *testing.B) {
	policies := []struct {
		name   string
		policy impress.SelectionPolicy
	}{
		{"best-loglik", impress.SelectBestLogLikelihood},
		{"random", impress.SelectRandom},
		{"oracle", impress.SelectOracle},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			targets := namedTargets(b, 42)
			cfg := impress.AdaptiveConfig(42)
			cfg.Pipeline.Selection = p.policy
			var res *impress.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = impress.RunAdaptive(targets, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCampaign(b, res)
		})
	}
}

// BenchmarkAblationConcurrency caps the number of concurrently active
// pipelines, measuring the asynchronous-execution headroom the
// coordinator exploits.
func BenchmarkAblationConcurrency(b *testing.B) {
	for _, cap := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("pipelines=%d", cap), func(b *testing.B) {
			targets := namedTargets(b, 42)
			cfg := impress.AdaptiveConfig(42)
			cfg.MaxConcurrent = cap
			var res *impress.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = impress.RunAdaptive(targets, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCampaign(b, res)
		})
	}
}

// BenchmarkSweepWorkers measures the campaign engine's wall-clock
// speedup as the worker pool widens: an 8-seed CONT-V vs IM-RP sweep
// (16 campaigns) at 1, 2, 4, and 8 workers. Outcomes are bit-identical
// across worker counts; only ns/op should fall.
func BenchmarkSweepWorkers(b *testing.B) {
	campaigns, err := impress.BuildScenario("sweep", impress.ScenarioParams{Seed: 100, Seeds: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var outs []impress.CampaignOutcome
			for i := 0; i < b.N; i++ {
				outs = impress.RunCampaigns(campaigns, workers)
			}
			traj := 0
			for _, o := range outs {
				if o.Err != nil {
					b.Fatal(o.Err)
				}
				traj += o.Result.TrajectoryCount()
			}
			b.ReportMetric(float64(len(outs)), "campaigns")
			b.ReportMetric(float64(traj), "traj")
		})
	}
}

// BenchmarkSplitPilots compares the single shared pilot against the
// heterogeneous CPU/GPU pilot pair on the adaptive 4-PDZ campaign.
func BenchmarkSplitPilots(b *testing.B) {
	for _, split := range []bool{false, true} {
		name := "single"
		if split {
			name = "split"
		}
		b.Run(name, func(b *testing.B) {
			targets := namedTargets(b, 42)
			cfg := impress.AdaptiveConfig(42)
			if split {
				pilots, err := impress.SplitPilots(cfg.Machine)
				if err != nil {
					b.Fatal(err)
				}
				cfg.Pilots = pilots
			}
			var res *impress.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = impress.RunAdaptive(targets, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCampaign(b, res)
		})
	}
}

// BenchmarkPolicyCompare races every registered scheduling policy on the
// adaptive 4-PDZ campaign — one sub-benchmark per policy, so the
// per-policy makespan/utilization deltas print side by side.
func BenchmarkPolicyCompare(b *testing.B) {
	for _, pol := range impress.SchedulingPolicies() {
		b.Run(pol, func(b *testing.B) {
			targets := namedTargets(b, 42)
			cfg := impress.AdaptiveConfig(42)
			cfg.Policy = pol
			var res *impress.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = impress.RunAdaptive(targets, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCampaign(b, res)
			wait, _ := res.QueueWait()
			b.ReportMetric(wait.Minutes(), "queue-wait-m")
		})
	}
}

// benchScreenScaling is one screen-scaling cell, shared by
// BenchmarkScreenScaling and the BENCH_<n>.json emitter.
func benchScreenScaling(b *testing.B, n int) {
	screen, err := impress.PDZScreen(42, n)
	if err != nil {
		b.Fatal(err)
	}
	cfg := impress.AdaptiveConfig(42)
	var res *impress.Result
	for i := 0; i < b.N; i++ {
		res, err = impress.RunAdaptive(screen, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCampaign(b, res)
}

// BenchmarkScreenScaling measures coordinator throughput as the workload
// widens (trajectory counts grow superlinearly through sub-pipelines).
func BenchmarkScreenScaling(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("targets=%d", n), func(b *testing.B) { benchScreenScaling(b, n) })
	}
}

// benchMegaScreen is the mega-screen body, shared by BenchmarkMegaScreen
// and the BENCH_<n>.json emitter.
func benchMegaScreen(b *testing.B) {
	campaigns, err := impress.BuildScenario("mega-screen", impress.ScenarioParams{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	var outs []impress.CampaignOutcome
	for i := 0; i < b.N; i++ {
		outs = impress.RunCampaigns(campaigns, 1)
		for _, o := range outs {
			if o.Err != nil {
				b.Fatalf("campaign %s failed: %v", o.Name, o.Err)
			}
		}
	}
	reportCampaign(b, outs[0].Result)
}

// BenchmarkMegaScreen runs the mega-screen scenario — a 128-target
// IM-RP screen on the split CPU/GPU pilot pair — end to end through the
// campaign engine. It is the headroom demonstration for the
// allocation-free simulation hot path: nearly double the paper's Fig. 3
// workload, on the heterogeneous two-pilot placement, in one op.
func BenchmarkMegaScreen(b *testing.B) {
	benchMegaScreen(b)
}

// benchAllocScaling is one allocation-ledger cell, shared by
// BenchmarkAllocScaling and the BENCH_<n>.json emitter. The cluster is
// driven to the indexed ledger's worst-documented case for a linear
// scan: every node but the last is completely full, so first-fit must
// reject n-1 nodes before placing. The linear mode pays O(n) per
// placement; the segment tree prunes full subtrees and pays O(log n).
// Both modes are differentially tested to pick identical nodes, so this
// is a pure mechanism A/B over one behaviour.
func benchAllocScaling(b *testing.B, n int, indexed bool) {
	spec := cluster.AmarelCluster(n)
	mk := cluster.NewLinear
	if indexed {
		mk = cluster.New
	}
	c, err := mk(spec)
	if err != nil {
		b.Fatal(err)
	}
	full := cluster.Request{Cores: spec.CoresPerNode, GPUs: spec.GPUsPerNode, MemGB: spec.MemGBPerNode}
	for i := 0; i < n-1; i++ {
		if c.Allocate(full) == nil {
			b.Fatalf("fill allocation %d failed", i)
		}
	}
	r := cluster.Request{Cores: 4, GPUs: 1, MemGB: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := c.Allocate(r)
		if a == nil {
			b.Fatal("steady-state allocation failed")
		}
		c.Release(a)
	}
}

// BenchmarkAllocScaling measures a single allocate/release round trip
// against cluster size, indexed ledger vs retained linear scan.
func BenchmarkAllocScaling(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		for _, mode := range []struct {
			name    string
			indexed bool
		}{{"indexed", true}, {"linear", false}} {
			b.Run(fmt.Sprintf("nodes=%d/%s", n, mode.name), func(b *testing.B) {
				benchAllocScaling(b, n, mode.indexed)
			})
		}
	}
}

// benchKiloScreen is the kilo-screen body, shared by BenchmarkKiloScreen
// and the BENCH_<n>.json emitter.
func benchKiloScreen(b *testing.B) {
	campaigns, err := impress.BuildScenario("kilo-screen", impress.ScenarioParams{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	var outs []impress.CampaignOutcome
	for i := 0; i < b.N; i++ {
		outs = impress.RunCampaigns(campaigns, 1)
		for _, o := range outs {
			if o.Err != nil {
				b.Fatalf("campaign %s failed: %v", o.Name, o.Err)
			}
		}
	}
	res := outs[0].Result
	reportCampaign(b, res)
	b.ReportMetric(float64(res.NodeTransfers), "transfers")
	if res.Faults != nil {
		b.ReportMetric(100*res.Goodput(), "goodput-%")
	}
}

// BenchmarkKiloScreen runs the kilo-screen scenario — a 128-target IM-RP
// screen on a generated 1000-node heterogeneous fleet with faults,
// recovery, and steering all active — end to end through the campaign
// engine. This is the scale the indexed allocation ledger exists for:
// every scheduling pass walks a thousand-node free-capacity ledger.
func BenchmarkKiloScreen(b *testing.B) {
	benchKiloScreen(b)
}

// benchTelemetry is one telemetry-overhead cell, shared by
// BenchmarkTelemetry and the BENCH_<n>.json emitter: the seed-42 pair
// scenario (CONT-V + IM-RP, the golden workload) with the observability
// recorder on or off. The off mode is the hot path the golden and
// allocation guards pin; the on mode additionally records task spans,
// per-pilot queue-depth and occupancy gauges, and instant events. The
// delta between the two is the total price of observability.
func benchTelemetry(b *testing.B, enabled bool) {
	campaigns, err := impress.BuildScenario("pair", impress.ScenarioParams{
		Seed:      42,
		Telemetry: enabled,
	})
	if err != nil {
		b.Fatal(err)
	}
	var outs []impress.CampaignOutcome
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs = impress.RunCampaigns(campaigns, 1)
		for _, o := range outs {
			if o.Err != nil {
				b.Fatalf("campaign %s failed: %v", o.Name, o.Err)
			}
		}
	}
	res := outs[1].Result
	reportCampaign(b, res)
	if enabled {
		points := 0
		for _, s := range res.Telemetry.Series {
			points += len(s)
		}
		for _, s := range res.QueueSeries {
			points += len(s)
		}
		b.ReportMetric(float64(points), "series-points")
		b.ReportMetric(float64(len(res.Telemetry.Instants)), "instants")
	}
}

// BenchmarkTelemetry is the observability on/off A/B on the pair
// workload. The off cell must match the pre-telemetry pair numbers;
// the on cell prices the recorder.
func BenchmarkTelemetry(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "off"
		if enabled {
			name = "on"
		}
		b.Run(name, func(b *testing.B) { benchTelemetry(b, enabled) })
	}
}

// BenchmarkFaultSweep runs a one-seed, single-rate resilience sweep —
// the fault-free baseline plus every recovery policy at a 20% per-task
// failure rate — on the campaign engine, reporting per-policy goodput.
// CI runs it at -benchtime 1x as the fault subsystem's smoke test.
func BenchmarkFaultSweep(b *testing.B) {
	campaigns, err := impress.BuildScenario("fault-sweep", impress.ScenarioParams{
		Seed:  42,
		Seeds: 1,
		Fault: impress.FaultSpec{TaskFailProb: 0.2},
	})
	if err != nil {
		b.Fatal(err)
	}
	var outs []impress.CampaignOutcome
	for i := 0; i < b.N; i++ {
		outs = impress.RunCampaigns(campaigns, 0)
		for _, o := range outs {
			if o.Err != nil {
				b.Fatalf("campaign %s failed: %v", o.Name, o.Err)
			}
		}
	}
	goodput, faulty := 0.0, 0
	for _, o := range outs {
		if o.Result.Faults != nil {
			goodput += o.Result.Goodput()
			faulty++
		}
	}
	b.ReportMetric(float64(len(outs)), "campaigns")
	b.ReportMetric(100*goodput/float64(faulty), "goodput-%")
}

// BenchmarkElasticScreen races the steering policies against the frozen
// split on the 4-node split placement — the perf harness behind the
// elastic-screen scenario. The reported speedup is the frozen split's
// makespan over the best steered makespan.
func BenchmarkElasticScreen(b *testing.B) {
	campaigns, err := impress.BuildScenario("elastic-screen", impress.ScenarioParams{
		Seed:    42,
		Seeds:   1,
		Targets: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	var outs []impress.CampaignOutcome
	for i := 0; i < b.N; i++ {
		outs = impress.RunCampaigns(campaigns, 0)
		for _, o := range outs {
			if o.Err != nil {
				b.Fatalf("campaign %s failed: %v", o.Name, o.Err)
			}
		}
	}
	frozen, best, transfers := 0.0, 0.0, 0
	for _, o := range outs {
		h := o.Result.Makespan.Hours()
		if o.Result.SteerLabel() == "none" {
			frozen = h
		} else if best == 0 || h < best {
			best = h
		}
		transfers += o.Result.NodeTransfers
	}
	b.ReportMetric(float64(len(outs)), "campaigns")
	b.ReportMetric(float64(transfers), "transfers")
	if best > 0 {
		b.ReportMetric(frozen/best, "best-speedup")
	}
}

// BenchmarkChaosSweep runs a one-seed chaos grid — the fault-free
// frozen baseline plus every recovery × steering cell on the labeled
// default fleet under the fixed correlated-failure mix — reporting mean
// goodput over the faulty cells and the total correlated-event counts.
// CI runs it at -benchtime 1x as the failure-domain smoke test.
func BenchmarkChaosSweep(b *testing.B) {
	campaigns, err := impress.BuildScenario("chaos-sweep", impress.ScenarioParams{
		Seed:    42,
		Seeds:   1,
		Targets: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	var outs []impress.CampaignOutcome
	for i := 0; i < b.N; i++ {
		outs = impress.RunCampaigns(campaigns, 0)
		for _, o := range outs {
			if o.Err != nil {
				b.Fatalf("campaign %s failed: %v", o.Name, o.Err)
			}
		}
	}
	goodput, faulty := 0.0, 0
	outages, maints := 0, 0
	for _, o := range outs {
		if f := o.Result.Faults; f != nil {
			goodput += o.Result.Goodput()
			faulty++
			outages += f.DomainOutages
			maints += f.MaintenanceWindows
		}
	}
	b.ReportMetric(float64(len(outs)), "campaigns")
	b.ReportMetric(100*goodput/float64(faulty), "goodput-%")
	b.ReportMetric(float64(outages), "outages")
	b.ReportMetric(float64(maints), "maint-windows")
}

// benchPreemptSweep is the preempt-sweep body, shared by
// BenchmarkPreemptSweep and the BENCH_<n>.json emitter: the one-seed
// preemption grid (fault-free baseline plus every checkpoint-cadence ×
// kill-vs-drain × steering cell), reporting the grid's total evictions
// and resumes and the headline waste comparison — wasted core-hours
// with checkpointing off (the kill+none/ck0 cell) against the
// evict-and-resume cell (drain+preempt/ck15m).
func benchPreemptSweep(b *testing.B) {
	campaigns, err := impress.BuildScenario("preempt-sweep", impress.ScenarioParams{
		Seed:    42,
		Seeds:   1,
		Targets: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	var outs []impress.CampaignOutcome
	for i := 0; i < b.N; i++ {
		outs = impress.RunCampaigns(campaigns, 0)
		for _, o := range outs {
			if o.Err != nil {
				b.Fatalf("campaign %s failed: %v", o.Name, o.Err)
			}
		}
	}
	evictions, resumes := 0, 0
	var wastedOff, wastedOn float64
	for _, o := range outs {
		f := o.Result.Faults
		if f == nil {
			continue
		}
		evictions += f.Evictions
		resumes += f.Resumes
		switch o.Name {
		case "preempt/kill+none/ck0/seed42":
			wastedOff = f.WastedCoreHours
		case "preempt/drain+preempt/ck15m/seed42":
			wastedOn = f.WastedCoreHours
		}
	}
	b.ReportMetric(float64(len(outs)), "campaigns")
	b.ReportMetric(float64(evictions), "evictions")
	b.ReportMetric(float64(resumes), "resumes")
	b.ReportMetric(wastedOff, "wasted-ck-off")
	b.ReportMetric(wastedOn, "wasted-ck-on")
}

// BenchmarkPreemptSweep runs the one-seed preemption grid end to end.
// CI runs it at -benchtime 1x as the checkpointed-preemption smoke test.
func BenchmarkPreemptSweep(b *testing.B) {
	benchPreemptSweep(b)
}

// benchTenantSweep is the tenant-sweep body, shared by
// BenchmarkTenantSweep and the BENCH_<n>.json emitter: the one-seed
// admission grid — every admission-control policy over eight campaigns
// arriving on one shared 12-node fleet with fairshare reclaim —
// reporting the best Jain's index, the fcfs baseline index, and the
// grid's total inter-campaign node reclaims.
func benchTenantSweep(b *testing.B) {
	campaigns, err := impress.BuildScenario("tenant-sweep", impress.ScenarioParams{
		Seed:    42,
		Seeds:   1,
		Targets: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	var outs []impress.CampaignOutcome
	for i := 0; i < b.N; i++ {
		outs = impress.RunCampaigns(campaigns, 0)
		for _, o := range outs {
			if o.Err != nil {
				b.Fatalf("campaign %s failed: %v", o.Name, o.Err)
			}
		}
	}
	bestJain, fcfsJain, reclaims := 0.0, 0.0, 0
	for _, o := range outs {
		j := impress.JainOf(o.Result)
		if j > bestJain {
			bestJain = j
		}
		if o.Result.Admission == "fcfs-admit" {
			fcfsJain = j
		}
		reclaims += o.Result.NodeTransfers
	}
	b.ReportMetric(float64(len(outs)), "campaigns")
	b.ReportMetric(bestJain, "best-jain")
	b.ReportMetric(fcfsJain, "fcfs-jain")
	b.ReportMetric(float64(reclaims), "reclaims")
}

// BenchmarkTenantSweep runs the one-seed admission grid end to end.
// CI runs it at -benchtime 1x as the multi-tenant service's smoke test.
func BenchmarkTenantSweep(b *testing.B) {
	benchTenantSweep(b)
}

// benchTenantCell is the BENCH_<n>.json consolidation A/B: the same
// eight arriving tenant campaigns run either through the shared-cluster
// service (weighted-fair admission on the 12-node pool — this PR's
// measurement) or on isolated private clusters, one demand-sized
// machine per tenant with no sharing at all (the baseline). The
// isolated fleet is nearly twice the hardware (23 nodes vs 12) and its
// makespan is each tenant's private runtime offset by its arrival —
// the cell's metric deltas price what consolidation costs in makespan
// against what it saves in nodes.
func benchTenantCell(b *testing.B, shared bool) {
	all, err := impress.BuildScenario("tenant-sweep", impress.ScenarioParams{
		Seed:      42,
		Seeds:     1,
		Targets:   8,
		Admission: "weighted-fair",
	})
	if err != nil {
		b.Fatal(err)
	}
	if len(all) != 1 {
		b.Fatalf("pinned admission built %d campaigns, want 1", len(all))
	}
	spec := all[0].Tenancy

	if shared {
		var outs []impress.CampaignOutcome
		for i := 0; i < b.N; i++ {
			outs = impress.RunCampaigns(all, 1)
			if outs[0].Err != nil {
				b.Fatalf("campaign %s failed: %v", all[0].Name, outs[0].Err)
			}
		}
		res := outs[0].Result
		b.ReportMetric(res.Makespan.Hours(), "makespan-h")
		b.ReportMetric(float64(spec.Config.Machine.Nodes), "nodes")
		b.ReportMetric(impress.JainOf(res), "jain")
		b.ReportMetric(float64(res.NodeTransfers), "reclaims")
		return
	}

	// Isolated baseline: each tenant on its own private demand-sized
	// cluster, workload and arrival stream identical to the service run.
	arrivals, err := fleet.Arrivals(spec.Config.Arrival, len(spec.Tenants), spec.Config.Span, spec.Config.Seed)
	if err != nil {
		b.Fatal(err)
	}
	nodes := 0
	campaigns := make([]impress.Campaign, len(spec.Tenants))
	for i, ts := range spec.Tenants {
		targets, err := workload.MinedScreen(xrand.Derive(ts.Seed, "tenant:"+ts.Name), ts.TargetCount, workload.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cfg := ts.Config
		cfg.Machine = cluster.AmarelCluster(ts.Nodes)
		nodes += ts.Nodes
		campaigns[i] = impress.Campaign{Name: "isolated/" + ts.Name, Seed: ts.Seed, Targets: targets, Config: cfg}
	}
	var outs []impress.CampaignOutcome
	for i := 0; i < b.N; i++ {
		outs = impress.RunCampaigns(campaigns, 0)
		for _, o := range outs {
			if o.Err != nil {
				b.Fatalf("campaign %s failed: %v", o.Name, o.Err)
			}
		}
	}
	var makespan time.Duration
	for i, o := range outs {
		if end := arrivals[i] + o.Result.Makespan; end > makespan {
			makespan = end
		}
	}
	b.ReportMetric(makespan.Hours(), "makespan-h")
	b.ReportMetric(float64(nodes), "nodes")
	// Private clusters never queue or reclaim: slowdown 1 for everyone.
	b.ReportMetric(1, "jain")
	b.ReportMetric(0, "reclaims")
}

// benchPreemptCell runs a single named campaign of the preemption grid —
// the BENCH_<n>.json A/B cells: the evict-and-resume measurement against
// the kill-and-restart baseline on the identical workload and walltime.
func benchPreemptCell(b *testing.B, campaign string) {
	all, err := impress.BuildScenario("preempt-sweep", impress.ScenarioParams{
		Seed:    42,
		Seeds:   1,
		Targets: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	var picked []impress.Campaign
	for _, c := range all {
		if c.Name == campaign {
			picked = append(picked, c)
		}
	}
	if len(picked) != 1 {
		b.Fatalf("campaign %q not in the preempt-sweep grid", campaign)
	}
	var outs []impress.CampaignOutcome
	for i := 0; i < b.N; i++ {
		outs = impress.RunCampaigns(picked, 1)
		if outs[0].Err != nil {
			b.Fatalf("campaign %s failed: %v", campaign, outs[0].Err)
		}
	}
	res := outs[0].Result
	b.ReportMetric(res.Makespan.Hours(), "makespan-h")
	b.ReportMetric(res.Faults.WastedCoreHours, "wasted-core-h")
	b.ReportMetric(float64(res.Faults.Resumes), "resumes")
	b.ReportMetric(float64(res.Faults.Evictions), "evictions")
}
